package telemetry

import (
	"math"
	"sync"
)

// Digest is a streaming latency summary: count, Welford mean/variance,
// min/max, and P² estimates of the 50th, 95th and 99th percentiles — all in
// O(1) memory, so a device can summarize millions of requests without
// retaining them. Safe for concurrent use; determinism of the quantile
// estimates still requires callers to feed observations in a deterministic
// order (the device front ends feed in ticket order).
type Digest struct {
	mu   sync.Mutex
	n    uint64
	mean float64
	m2   float64 // Welford sum of squared deviations
	min  float64
	max  float64
	p50  *P2
	p95  *P2
	p99  *P2
}

// NewDigest returns an empty digest.
func NewDigest() *Digest {
	return &Digest{min: math.Inf(1), max: math.Inf(-1),
		p50: NewP2(0.50), p95: NewP2(0.95), p99: NewP2(0.99)}
}

// Observe feeds one sample.
func (d *Digest) Observe(v float64) {
	d.mu.Lock()
	d.n++
	delta := v - d.mean
	d.mean += delta / float64(d.n)
	d.m2 += delta * (v - d.mean)
	if v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	d.p50.Observe(v)
	d.p95.Observe(v)
	d.p99.Observe(v)
	d.mu.Unlock()
}

// DigestSnapshot is a point-in-time reading of a Digest.
type DigestSnapshot struct {
	N    uint64
	Mean float64
	Std  float64 // population standard deviation, matching stats.Summarize
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Snapshot returns the current summary. An empty digest yields zeros.
func (d *Digest) Snapshot() DigestSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		return DigestSnapshot{}
	}
	return DigestSnapshot{
		N:    d.n,
		Mean: d.mean,
		Std:  math.Sqrt(d.m2 / float64(d.n)),
		Min:  d.min,
		Max:  d.max,
		P50:  d.p50.Value(),
		P95:  d.p95.Value(),
		P99:  d.p99.Value(),
	}
}
