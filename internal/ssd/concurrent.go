package ssd

import (
	"fmt"
	"sort"
	"sync"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/telemetry"
)

// ConcurrentDevice is a thread-safe, event-driven front end over the FTL:
// submissions may come from many goroutines, each request's flash work is
// sharded across per-chip simulated clocks (the PerChip queue model
// generalized to a real multi-queue scheduler), adjacent-LPN requests
// submitted in one batch coalesce into super-word-line submissions, and
// statistics merge deterministically — stable arrival order, never
// completion race order.
//
// Time is advanced by a conservative-horizon core: every chip owns an
// independent busy-until clock in till[chip], each flash operation starts at
// max(request arrival, its chip's clock) and advances only that clock, and
// the clocks synchronize solely at the completion horizon — a run's
// host-visible finish is the latest end time across the chips it touched.
// Because an op's start depends only on its own chip's clock and the ticket
// order fixes which op reaches each chip next, no cross-chip rendezvous is
// needed: end times are known the moment the FTL stage journals the op, so
// the former per-op worker handoff (a channel round trip per flash
// operation) is gone from the hot path.
//
// Ordering discipline: every submission holds a ticket. The FTL stage
// (mapping, GC, op-journal drain, chip-clock advance) executes in strict
// ticket order under one lock; completion assembly is pure arithmetic and
// runs outside it. Given pre-stamped arrival times and a fixed ticket order
// (see ReserveBatch), results are bit-for-bit independent of how many
// goroutines submit — a depth-16 replay produces exactly the depth-1
// completions.
//
// The "0 = now" arrival convention resolves against the latest admitted
// arrival (the deterministic choice under concurrency), not against
// completions as the serial Device's clock does.
type ConcurrentDevice struct {
	f   *ftl.FTL
	cfg Config

	mu     sync.Mutex             // serializes the FTL stage and admission state
	admit  *sync.Cond             // wakes submitters waiting for their ticket
	issued uint64                 // tickets handed out
	next   uint64                 // next ticket allowed into the FTL stage
	clock  float64                // latest admitted arrival, µs
	trc    telemetry.Tracer       // nil = tracing disabled (read under mu)
	led    *telemetry.Ledger      // nil = hop ledger disabled (read under mu)
	met    *telemetry.Metrics     // retained so PowerCycle can rewire the restored FTL
	attr   *telemetry.Attribution // retained for the same reason
	// tenants maps a tenant id to its pacing state: a shaped run may not
	// start before the tenant's virtual clock, which every run advances by
	// its chip work divided by the quota — deterministic per-tenant
	// service-rate isolation, maintained in ticket order under mu.
	tenants map[int]*tenantShape
	// resTill holds the per-chip reservation watermarks for quota-deferred
	// runs. Deferred ops are placed on this track — at or after both the
	// chip's busy-until watermark and the previous reservation — and never
	// advance till, so a throttled tenant's far-future reservations do not
	// hold the chip against anyone scheduled after it (shaping stays
	// work-conserving). The track only ever moves once a quota deferral
	// happened, so schedules without tenant shaping are untouched.
	resTill []float64
	// bufPages counts, per tenant, the pages sitting in the FTL's open
	// superpage buffer — maintained only while tenant quotas exist, and
	// reset at every flush. It decides which tenant a flush's programs are
	// attributed to (plurality of buffered pages), so a flood cannot launder
	// its chip work through the flush an innocent neighbor happens to trip.
	bufPages map[int]int
	// curTrace/curTicket hold the trace context of the request the FTL stage
	// is currently executing, so the blocking-GC observer (which fires from
	// inside WriteHinted) can attribute its page counts. Written and read
	// only under mu.
	curTrace  uint64
	curTicket uint64
	rec       *recState // nil until AttachRecorder (read under mu)
	// recExtra*, set before AttachRecorder, append caller-owned columns
	// (e.g. the network server's counters) after the device column set.
	recExtraCols []string
	recExtraFn   func(vals []float64)
	// till holds the per-chip simulated clocks — each chip's busy-until
	// watermark, advanced in strict ticket order by the FTL stage. It is the
	// authoritative schedule (there is no racy worker state to mirror): the
	// recorder samples utilization from it and the GC scheduler reads it to
	// find idle windows, so preemptive GC placement — and therefore every
	// result — stays bit-identical across submitter counts.
	till []float64
	// chips carries the per-chip op/busy counters, advanced alongside till.
	chips []ChipStats

	statsMu  sync.Mutex
	records  []latencyRecord // only populated when cfg.RetainLatencies
	counts   Stats           // scalar counters; Latencies are merged from records
	horizon  float64         // latest completion observed, µs
	lat      *telemetry.Digest
	pend     map[uint64][]float64 // finished tickets not yet fed to the digest
	latsFree [][]float64          // drained pend slices, recycled by submit
	drain    uint64               // next ticket the digest will consume
	qdepth   *telemetry.Gauge     // in-flight submissions; nil when unwired
}

// tenantShape paces one tenant's chip-work admission on the simulated
// clock. vt is the tenant's virtual clock — the earliest instant its next
// run may start; a run placed at start with W µs of chip work (plus bus
// transfer) advances vt to max(vt, start) + W/quota, so the tenant's
// long-run chip occupancy converges to quota chips no matter how its work
// clumps into buffered-write flushes.
type tenantShape struct {
	quota float64 // average number of chips the tenant may keep busy
	vt    float64
}

// latencyRecord keys one completion for the deterministic stats merge.
type latencyRecord struct {
	arrival float64
	ticket  uint64
	slot    int // position within the ticket's batch
	latency float64
}

// ChipStats reports one chip's simulated activity.
type ChipStats struct {
	Chip int
	Ops  uint64
	Busy float64 // µs of occupied chip time
	Till float64 // busy-until watermark, µs
}

// NewConcurrent builds a thread-safe device over the given flash array. The
// Queue field of the configuration is ignored (the front end always shards
// per chip). Close is a no-op kept for API compatibility.
func NewConcurrent(arr *flash.Array, cfg Config) (*ConcurrentDevice, error) {
	if cfg.BusMBps <= 0 {
		return nil, fmt.Errorf("ssd: bus bandwidth must be positive, got %v", cfg.BusMBps)
	}
	f, err := ftl.New(arr, cfg.FTL)
	if err != nil {
		return nil, err
	}
	f.EnableOpJournal()
	// Submitters transfer payload ownership: the server decodes every frame
	// into a fresh buffer and the workload generators build each payload per
	// request, so the FTL may store the slices directly (zero copy). Read
	// completions own their data — flash never recycles payload buffers in
	// this mode — so Completion.Data stays valid indefinitely, which the
	// asynchronous network writer relies on.
	f.SetPayloadOwnership(ftl.BorrowHost)
	chips := arr.Geometry().Chips
	c := &ConcurrentDevice{
		f:       f,
		cfg:     cfg,
		lat:     telemetry.NewDigest(),
		pend:    make(map[uint64][]float64),
		till:    make([]float64, chips),
		resTill: make([]float64, chips),
		chips:   make([]ChipStats, chips),
	}
	for i := range c.chips {
		c.chips[i].Chip = i
	}
	c.admit = sync.NewCond(&c.mu)
	return c, nil
}

// Close is retained for API compatibility. The conservative-horizon core
// advances every chip clock inside the FTL stage — there are no worker
// goroutines to stop.
func (c *ConcurrentDevice) Close() {}

// FTL exposes the underlying translation layer. Only touch it while no
// submission is in flight — the FTL itself is not thread-safe. Use WithFTL
// to inspect it while traffic is running.
func (c *ConcurrentDevice) FTL() *ftl.FTL { return c.f }

// WithFTL runs fn with the FTL-stage lock held. The FTL is only ever
// mutated inside that critical section, so fn gets a race-free view even
// while submissions are in flight (the network front end's STAT op relies
// on this). fn must not submit to the device — that would deadlock.
func (c *ConcurrentDevice) WithFTL(fn func(*ftl.FTL)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(c.f)
}

// PageSize returns the device's page size in bytes.
func (c *ConcurrentDevice) PageSize() int { return c.f.Geometry().PageSize }

// Now returns the simulated clock: the later of the latest admitted arrival
// and the latest completion. Both locks are held together — reading them in
// two separate critical sections would let a submission land between the
// reads and return a clock torn between two different instants.
func (c *ConcurrentDevice) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	t := c.clock
	if c.horizon > t {
		t = c.horizon
	}
	return t
}

// SetTracer attaches (or, with nil, detaches) a tracer recording the device
// pipeline on the simulated clock: one host span per request, an FTL-stage
// instant per coalesced run, and one span per chip operation. Call while no
// submission is in flight — typically after the warm fill, so the trace
// covers only the measured workload.
func (c *ConcurrentDevice) SetTracer(tr telemetry.Tracer) {
	c.mu.Lock()
	c.trc = tr
	c.mu.Unlock()
}

// SetLedger attaches (or, with nil, detaches) a hop ledger recording
// garbage-collection work attributed to traced requests: one HopGC record
// per preemptive GC step (SimUS = the step's flash latency, Pages = pages
// relocated), attributed to the trace that triggered the idle window or debt
// step, plus a zero-duration HopGC marker carrying the page count of any
// blocking collection a traced write tripped (the blocked time itself is in
// that write's Completion.GCTime, which the serving layer records — the
// marker only adds the relocation count the Completion cannot carry).
// Records are emitted under the serialized ticket-order FTL stage, so the
// ledger's sorted contents are identical across submitter counts. Call while
// no submission is in flight.
func (c *ConcurrentDevice) SetLedger(l *telemetry.Ledger) {
	c.mu.Lock()
	c.led = l
	c.wireGCObserver()
	c.mu.Unlock()
}

// wireGCObserver points the current FTL's GC observer at the attached
// ledger (or detaches it). Caller holds c.mu; PowerCycle re-runs this after
// swapping in the restored FTL.
func (c *ConcurrentDevice) wireGCObserver() {
	l := c.led
	if l == nil {
		c.f.SetGCObserver(nil)
		return
	}
	c.f.SetGCObserver(func(ev ftl.GCEvent) {
		// Step events are recorded by gcStepRun, which also knows the
		// schedule slot; only blocking refills are captured here.
		if !ev.Blocking || c.curTrace == 0 {
			return
		}
		l.Record(telemetry.HopRecord{
			Trace: c.curTrace, Hop: telemetry.HopGC, Parent: telemetry.HopNone,
			Seq: c.curTicket, LPN: -1, Pages: ev.Moves, SimTS: -1,
		})
	})
}

// SetAttribution wires (or, with nil, unwires) a straggler attribution table
// into the FTL. The FTL stage runs in strict ticket order, so the table's
// report is byte-identical across worker counts. Call while no submission is
// in flight.
func (c *ConcurrentDevice) SetAttribution(a *telemetry.Attribution) {
	c.mu.Lock()
	c.attr = a
	c.f.SetAttribution(a)
	c.mu.Unlock()
}

// SetTenantQuota registers (or, with quota <= 0, removes) a deterministic
// service quota for a tenant: the tenant may keep at most quota chips busy
// on average. Shaping is virtual-time pacing — each of the tenant's runs
// advances a per-tenant virtual clock by its chip work over the quota, and
// no run of the tenant may start before that clock — so a flood offered
// faster than its quota falls ever further behind (its Wait and tail
// latency grow with its own backlog) while the chip time it may not use yet
// stays free. Deferred runs ride a separate reservation track on each chip
// (see schedule), keeping shaping work-conserving for everyone else.
// Applied in ticket order under the FTL-stage lock, so results stay
// bit-identical across submitter counts. Requests whose Tenant has no
// registered quota (including Tenant 0) are unshaped. Call while no
// submission is in flight.
func (c *ConcurrentDevice) SetTenantQuota(tenant, quota int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if quota <= 0 {
		delete(c.tenants, tenant)
		return
	}
	if c.tenants == nil {
		c.tenants = make(map[int]*tenantShape)
	}
	c.tenants[tenant] = &tenantShape{quota: float64(quota)}
}

// AttachRecorder wires a flight recorder into the FTL stage: every clock
// advance ticks it, sampling WAF, in-flight depth, the extra-latency EWMA,
// assembly pool levels, and per-chip utilization. The recorder must have been
// built with RecorderColumns for this device's chip count. All sampled state
// is maintained under the serialized ticket-order stage (the per-chip clocks
// are authoritative, not racy worker state), so the recorder's export bytes
// are identical however many goroutines submit. Call while no submission is
// in flight — typically after the warm fill.
func (c *ConcurrentDevice) AttachRecorder(rec *telemetry.Recorder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec == nil {
		c.rec = nil
		return nil
	}
	rs, err := newRecState(rec, len(c.chips), c.f, len(c.recExtraCols), c.recExtraFn)
	if err != nil {
		return err
	}
	// Seed from the (idle) chip clocks so mid-run attachment — e.g. after the
	// warm fill — continues their schedule instead of restarting the timeline
	// at zero, and align the sampling cursor so the elapsed history is not
	// backfilled.
	for i := range c.chips {
		rs.busy[i] = c.chips[i].Busy
		if c.chips[i].Till > rs.hor {
			rs.hor = c.chips[i].Till
		}
	}
	c.statsMu.Lock()
	if c.horizon > rs.hor {
		rs.hor = c.horizon
	}
	if c.clock > rs.hor {
		rs.hor = c.clock
	}
	c.statsMu.Unlock()
	rs.rec.AlignTo(rs.hor)
	c.rec = rs
	return nil
}

// SetRecorderExtra registers extra flight-recorder columns filled by fn on
// every sample, appended after the device's RecorderColumns set — the
// serving layer wires its connection/in-flight counters in this way. Call
// before AttachRecorder; the recorder must then be built with
// append(RecorderColumns(chips), cols...). Extra columns read live state
// under the recorder lock, so they are excluded from the device columns'
// byte-determinism guarantee.
func (c *ConcurrentDevice) SetRecorderExtra(cols []string, fn func(vals []float64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recExtraCols = append([]string(nil), cols...)
	c.recExtraFn = fn
}

// FlushRecorder ticks the attached recorder up to the current simulated
// clock, emitting the samples between the last event and now. Call while no
// submission is in flight, after the final batch, before exporting.
func (c *ConcurrentDevice) FlushRecorder() {
	now := c.Now()
	c.mu.Lock()
	if c.rec != nil {
		c.rec.tick(now)
	}
	c.mu.Unlock()
}

// SetMetrics wires (or, with nil, unwires) a telemetry registry: the FTL's
// "ftl." counters, a "ssd.qdepth" gauge tracking in-flight submissions, and
// the streaming "ssd.latency" digest. Call while no submission is in flight;
// wiring a registry swaps in its (fresh) digest, so attaching after the warm
// fill keeps the fill out of the measured distribution.
func (c *ConcurrentDevice) SetMetrics(m *telemetry.Metrics) {
	c.met = m
	c.f.SetMetrics(m)
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if m == nil {
		c.qdepth = nil
		c.lat = telemetry.NewDigest()
		return
	}
	c.qdepth = m.Gauge("ssd.qdepth")
	c.lat = m.Digest("ssd.latency")
}

// LatencyDigest returns the streaming latency summary: moments plus P²
// p50/p95/p99 estimates in O(1) memory. Observations enter in ticket order
// (a reorder buffer holds completions that finish early), so the snapshot is
// identical however many goroutines submitted.
func (c *ConcurrentDevice) LatencyDigest() telemetry.DigestSnapshot {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.lat.Snapshot()
}

// Reserve allocates the next submission ticket. SubmitTicket admits tickets
// strictly in order, so every reserved ticket must eventually be submitted.
// Plain Submit/SubmitBatch reserve internally; use Reserve/ReserveBatch only
// to pin an externally defined order (e.g. trace order) onto concurrent
// submitters, and do not mix the two styles on one device.
func (c *ConcurrentDevice) Reserve() uint64 {
	c.mu.Lock()
	t := c.issued
	c.issued++
	c.mu.Unlock()
	return t
}

// NextTicket returns the ticket the next Reserve would hand out, without
// consuming it. The network server uses it to rebase a client's dense
// 0-based sequence numbers onto a device whose ticket counter has already
// advanced (e.g. past a warm fill).
func (c *ConcurrentDevice) NextTicket() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.issued
}

// ReserveBatch allocates n consecutive tickets and returns the first.
func (c *ConcurrentDevice) ReserveBatch(n int) uint64 {
	c.mu.Lock()
	t := c.issued
	c.issued += uint64(n)
	c.mu.Unlock()
	return t
}

// Submit services one request. Safe for concurrent use; the request enters
// the FTL in ticket (submission) order.
func (c *ConcurrentDevice) Submit(req Request) (Completion, error) {
	return c.SubmitTicket(c.Reserve(), req)
}

// SubmitTicket services one request under a previously reserved ticket,
// blocking until all earlier tickets have entered the FTL stage.
func (c *ConcurrentDevice) SubmitTicket(ticket uint64, req Request) (Completion, error) {
	comps, err := c.submit(ticket, []Request{req})
	if err != nil {
		return Completion{}, err
	}
	return comps[0], nil
}

// SubmitBatch services several requests as one submission. Runs of
// adjacent-LPN writes coalesce into back-to-back super-word-line buffer
// fills (sharing their multi-plane program), and runs of adjacent-LPN reads
// into multi-plane range reads whose cost is the slowest member, not the
// sum. Completions are returned in request order.
func (c *ConcurrentDevice) SubmitBatch(reqs []Request) ([]Completion, error) {
	return c.submit(c.Reserve(), reqs)
}

// SubmitBatchTicket is SubmitBatch under a previously reserved ticket.
func (c *ConcurrentDevice) SubmitBatchTicket(ticket uint64, reqs []Request) ([]Completion, error) {
	return c.submit(ticket, reqs)
}

// run is one coalesced unit of a batch: [first, first+n) of the request
// slice, serviced as a single flash submission. GC pseudo-runs carry chip
// work but no requests (n = 0).
type run struct {
	first, n int
	arrival  float64   // service start: max member arrival (0 resolved to the clock)
	end      float64   // latest chip-op end time; arrival when the run had no flash work
	arrivals []float64 // resolved per-member arrivals
	xfer     float64   // host-bus time of the whole run (or command overhead)
	data     [][]byte  // read payloads per member, nil otherwise
	gcl      []float64 // blocking-GC latency per member write (lazily allocated; nil = all zero)
}

// submitScratch is the per-submission working set — the run list and each
// run's per-member slices — recycled through a sync.Pool so the steady-state
// Submit path allocates nothing beyond the completions it returns. The pool
// cannot affect determinism: every field of every reused run is overwritten
// (or truncated and refilled) before it is read.
type submitScratch struct {
	runs []run
}

var scratchPool = sync.Pool{New: func() any { return new(submitScratch) }}

// nextRun appends a zeroed run to the scratch, reviving the per-member slice
// capacity a previous submission left in the backing array.
func (s *submitScratch) nextRun() *run {
	if len(s.runs) < cap(s.runs) {
		s.runs = s.runs[:len(s.runs)+1]
		r := &s.runs[len(s.runs)-1]
		arrivals, data := r.arrivals, r.data
		*r = run{arrivals: arrivals[:0], data: data[:0]}
		return r
	}
	s.runs = append(s.runs, run{})
	return &s.runs[len(s.runs)-1]
}

func (c *ConcurrentDevice) submit(ticket uint64, reqs []Request) ([]Completion, error) {
	if g := c.gauge(); g != nil {
		g.Add(1)
		defer g.Add(-1)
	}
	sc := scratchPool.Get().(*submitScratch)
	sc.runs = sc.runs[:0]
	c.mu.Lock()
	for c.next != ticket {
		c.admit.Wait()
	}
	var err error
	if len(reqs) > 0 {
		err = c.ftlStage(ticket, reqs, sc)
	}
	trc := c.trc
	// The ticket advances even on error (and on an empty batch) so later
	// submitters are never deadlocked behind a failed request.
	c.next = ticket + 1
	c.admit.Broadcast()
	c.mu.Unlock()

	// Completion stage, outside the lock: pure arithmetic — every run's end
	// time was fixed by the FTL stage against the per-chip clocks, so there
	// is nothing to wait for.
	runs := sc.runs
	comps := make([]Completion, len(reqs))
	for ri := range runs {
		r := &runs[ri]
		finish := r.end + r.xfer
		for i := 0; i < r.n; i++ {
			arr := r.arrivals[i]
			var gct float64
			if r.gcl != nil {
				gct = r.gcl[i]
			}
			comps[r.first+i] = Completion{
				Start:   r.arrival,
				Finish:  finish,
				Wait:    r.arrival - arr,
				Service: finish - r.arrival,
				Latency: finish - arr,
				GCTime:  gct,
				Data:    r.data[i],
			}
		}
	}
	if err != nil {
		// The digest drain must still see this ticket, or every later
		// completion would sit in the reorder buffer forever.
		c.statsMu.Lock()
		c.pend[ticket] = nil
		c.feedDigest()
		c.statsMu.Unlock()
		scratchPool.Put(sc)
		return nil, err
	}
	if trc != nil {
		for ri := range runs {
			r := &runs[ri]
			head := reqs[r.first]
			trc.Emit(telemetry.Event{
				Ts: r.arrival, Track: telemetry.TrackFTL, Ph: telemetry.PhaseInstant,
				Name: "ftl-stage", Cat: "ftl", Seq: ticket, Slot: r.first, LPN: head.LPN,
			})
			for i := 0; i < r.n; i++ {
				req := reqs[r.first+i]
				cp := comps[r.first+i]
				trc.Emit(telemetry.Event{
					Ts: r.arrivals[i], Dur: cp.Latency, Track: telemetry.TrackHost,
					Ph: telemetry.PhaseSpan, Name: req.Kind.String(), Cat: "host",
					Seq: ticket, Slot: r.first + i, LPN: req.LPN, TraceID: req.Trace,
				})
			}
		}
	}
	// Latencies of this ticket in slot order: the reorder buffer feeds them
	// to the digest in ticket order, so the streaming quantiles are the same
	// at any submission depth.
	c.statsMu.Lock()
	var lats []float64
	if n := len(c.latsFree); n > 0 {
		lats = c.latsFree[n-1][:0]
		c.latsFree = c.latsFree[:n-1]
	}
	for ri := range runs {
		r := &runs[ri]
		for i := 0; i < r.n; i++ {
			cp := comps[r.first+i]
			c.counts.Requests++
			switch reqs[r.first+i].Kind {
			case OpWrite:
				c.counts.Writes++
			case OpRead:
				c.counts.Reads++
			case OpTrim:
				c.counts.Trims++
			}
			if c.cfg.RetainLatencies {
				c.records = append(c.records, latencyRecord{
					arrival: r.arrivals[i], ticket: ticket, slot: r.first + i, latency: cp.Latency,
				})
			}
			lats = append(lats, cp.Latency)
			if cp.Finish > c.horizon {
				c.horizon = cp.Finish
			}
		}
	}
	c.pend[ticket] = lats
	c.feedDigest()
	c.statsMu.Unlock()
	scratchPool.Put(sc)
	return comps, nil
}

// gauge returns the in-flight gauge under the stats lock.
func (c *ConcurrentDevice) gauge() *telemetry.Gauge {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.qdepth
}

// feedDigest advances the ticket-order drain over the reorder buffer,
// recycling the drained latency slices for later submissions. Caller holds
// c.statsMu.
func (c *ConcurrentDevice) feedDigest() {
	for {
		lats, ok := c.pend[c.drain]
		if !ok {
			return
		}
		delete(c.pend, c.drain)
		c.drain++
		for _, v := range lats {
			c.lat.Observe(v)
		}
		if cap(lats) > 0 {
			c.latsFree = append(c.latsFree, lats[:0])
		}
	}
}

// maxTill returns the busy-until horizon across all chip clocks — when the
// device frees up, as scheduled in ticket order.
func (c *ConcurrentDevice) maxTill() float64 {
	h := 0.0
	for _, t := range c.till {
		if t > h {
			h = t
		}
	}
	return h
}

// schedule advances one chip's simulated clock over a flash operation: the
// op starts at max(earliest, the chip's busy-until watermark) and the end
// time is returned. Per-chip counters, recorder utilization, and the chip
// trace span are maintained in the same step. Caller holds c.mu; because the
// FTL stage runs in strict ticket order, each chip's clock sees its ops in a
// deterministic sequence and the whole schedule is bit-identical however
// many goroutines submit.
//
// deferred marks ops of a run the tenant quota pushed into the future. They
// ride a separate reservation track (resTill): a deferred op starts at or
// after both watermarks but advances only the reservation one, so the idle
// stretch a deferral skips over stays open for everyone scheduled after it
// — shaping is work-conserving, and a paced tenant's far-future
// reservations can never drag an unshaped tenant's ops to its backlog
// horizon. The two tracks may overlap once normal work catches up to a
// reservation; that costs placement fidelity only when aggregate demand
// (quotas plus unshaped load) exceeds the chip count. Both tracks are pure
// functions of the ticket order, so determinism is preserved.
func (c *ConcurrentDevice) schedule(op ftl.FlashOp, earliest float64, ticket uint64, slot int, deferred bool) float64 {
	s := earliest
	if t := c.till[op.Chip]; t > s {
		s = t
	}
	if deferred {
		if t := c.resTill[op.Chip]; t > s {
			s = t
		}
		c.resTill[op.Chip] = s + op.Dur
	} else {
		c.till[op.Chip] = s + op.Dur
	}
	e := s + op.Dur
	cs := &c.chips[op.Chip]
	cs.Ops++
	cs.Busy += op.Dur
	cs.Till = c.till[op.Chip]
	if c.rec != nil {
		c.rec.busy[op.Chip] += op.Dur
	}
	if c.trc != nil {
		c.trc.Emit(telemetry.Event{
			Ts:    s,
			Dur:   op.Dur,
			Track: telemetry.TrackChip(op.Chip),
			Ph:    telemetry.PhaseSpan,
			GC:    op.GC,
			Name:  telemetry.OpName(op.Kind),
			Cat:   "flash",
			Seq:   ticket,
			Slot:  slot,
			LPN:   -1,
		})
	}
	return e
}

// bufMajority returns the tenant owning the plurality of pages buffered
// since the last superpage flush (ties break to the smallest tenant id, so
// the answer never depends on map iteration order). Caller holds c.mu.
func (c *ConcurrentDevice) bufMajority() (int, bool) {
	best, n := 0, -1
	for t, k := range c.bufPages {
		if k > n || (k == n && t < best) {
			best, n = t, k
		}
	}
	return best, n >= 0
}

// gcStepRun executes one preemptive GC step in the FTL stage and schedules
// its chip work as a pseudo-run (no completions). Caller holds c.mu;
// earliest bounds where the step's flash ops may start; trace attributes the
// step to the request that opened the window (0 = untraced); deferred routes
// the step's chip work onto the reservation track — debt paid behind a
// quota-deferred ticket belongs to that tenant's schedule, not in front of
// everyone else's. worked is false when GC had nothing to do.
func (c *ConcurrentDevice) gcStepRun(ticket uint64, earliest float64, trace uint64, sc *submitScratch, deferred bool) (bool, error) {
	var res ftl.GCStepResult
	ops, err := c.f.CollectOps(func() error {
		var e error
		res, e = c.f.GCStep(c.f.GCStepPages())
		return e
	})
	if c.led != nil && trace != 0 && !res.Idle {
		c.led.Record(telemetry.HopRecord{
			Trace: trace, Hop: telemetry.HopGC, Parent: telemetry.HopNone,
			Seq: ticket, LPN: -1, Pages: res.Moves, SimTS: earliest, SimUS: res.Latency,
		})
	}
	r := sc.nextRun()
	r.arrival, r.end = earliest, earliest
	for _, op := range ops {
		if e := c.schedule(op, earliest, ticket, -1, deferred); e > r.end {
			r.end = e
		}
	}
	return !res.Idle, err
}

// gcIdleSteps runs GC steps in the idle window before arrival — the gap
// between the chip-clock horizon and the next request's start. Host work
// keeps priority: stepping stops once the window is consumed (the last step
// may overshoot; flash ops are not preemptible).
func (c *ConcurrentDevice) gcIdleSteps(ticket uint64, arrival float64, trace uint64, sc *submitScratch) error {
	for c.maxTill() < arrival && c.f.GCNeeded() {
		worked, err := c.gcStepRun(ticket, c.maxTill(), trace, sc, false)
		if err != nil {
			return err
		}
		if !worked {
			break
		}
	}
	return nil
}

// ftlStage executes a batch against the FTL in run-sized units, advancing
// the per-chip clocks over the journalled chip work. Caller holds c.mu. On
// error the runs executed so far remain in sc, their end times already
// final.
func (c *ConcurrentDevice) ftlStage(ticket uint64, reqs []Request, sc *submitScratch) error {
	if c.f.GCStepPages() > 0 {
		// Preemptive GC in the idle window before this ticket's work: steps
		// are scheduled against the chip-clock horizon, in ticket order, so
		// placement is identical however many goroutines submit.
		a0 := reqs[0].Arrival
		if a0 == 0 {
			a0 = c.clock
		}
		if err := c.gcIdleSteps(ticket, a0, reqs[0].Trace, sc); err != nil {
			return err
		}
	}
	opIdx := 0 // op index across the whole batch, for trace attribution
	batchDeferred := false
	for first := 0; first < len(reqs); {
		n := runLen(reqs[first:])
		r := sc.nextRun()
		r.first, r.n = first, n
		if cap(r.arrivals) < n {
			r.arrivals = make([]float64, n)
		} else {
			r.arrivals = r.arrivals[:n]
		}
		if cap(r.data) < n {
			r.data = make([][]byte, n)
		} else {
			r.data = r.data[:n]
			for i := range r.data {
				r.data[i] = nil
			}
		}
		for i := 0; i < n; i++ {
			a := reqs[first+i].Arrival
			if a == 0 {
				a = c.clock
			}
			r.arrivals[i] = a
			if a > r.arrival {
				r.arrival = a
			}
		}
		if r.arrival > c.clock {
			c.clock = r.arrival
		}
		if c.rec != nil {
			// Sample any interval boundaries this run's arrival crossed
			// before executing it, so samples hold the pre-event state.
			c.rec.tick(c.clock)
		}
		ops, err := c.f.CollectOps(func() error {
			for i := 0; i < n; i++ {
				req := reqs[first+i]
				c.curTrace, c.curTicket = req.Trace, ticket
				switch req.Kind {
				case OpWrite:
					res, err := c.f.WriteHinted(req.LPN, req.Data, req.Hint)
					if err != nil {
						return err
					}
					if res.GCLatency > 0 {
						if r.gcl == nil {
							r.gcl = make([]float64, n)
						}
						r.gcl[i] = res.GCLatency
					}
					r.xfer += c.transferTime(len(req.Data))
				case OpRead:
					if n > 1 {
						// An adjacent-LPN read run: one multi-plane range
						// read covers every member.
						datas, _, err := c.f.ReadRange(req.LPN, n)
						if err != nil {
							return err
						}
						for j, d := range datas {
							r.data[j] = d
							r.xfer += c.transferTime(len(d))
						}
						return nil
					}
					res, err := c.f.Read(req.LPN)
					if err != nil {
						return err
					}
					r.data[i] = res.Data
					r.xfer += c.transferTime(len(res.Data))
				case OpTrim:
					if err := c.f.Trim(req.LPN); err != nil {
						return err
					}
					r.xfer += 1 // command overhead only
				default:
					return fmt.Errorf("ssd: unknown op kind %v", req.Kind)
				}
			}
			return nil
		})
		// Tenant shaping: a quota'd tenant's run may not start before the
		// tenant's virtual clock. The run's work is attributed to the tenant
		// that owns it — normally the submitter, but a superpage flush belongs
		// to whoever buffered the plurality of its pages: under a flood, most
		// flushes a quiet tenant trips carry the flood's pages, and that work
		// must ride the flood's schedule, not land in front of everyone else.
		// A detached run (flush of a shaped neighbor's pages) completes at
		// buffer-insert time — the submitter ACKs like any buffered write
		// while the programs run on the owner's reservation track.
		var shape *tenantShape
		deferred, detached := false, false
		schedAt := r.arrival
		if len(c.tenants) > 0 {
			owner := reqs[first].Tenant
			if reqs[first].Kind == OpWrite {
				if c.bufPages == nil {
					c.bufPages = make(map[int]int)
				}
				c.bufPages[owner] += n
				if len(ops) > 0 {
					if m, ok := c.bufMajority(); ok && m != owner && c.tenants[m] != nil {
						owner = m
						detached = true
					}
					for t := range c.bufPages {
						delete(c.bufPages, t)
					}
				}
			}
			shape = c.tenants[owner]
			if shape != nil && shape.vt > schedAt {
				schedAt = shape.vt
				deferred = true
				batchDeferred = true
				if !detached {
					// Own deferral is measured from the stamped arrival, so
					// it surfaces as Wait on the completion.
					r.arrival = schedAt
				}
			}
		}
		r.end = r.arrival
		for _, op := range ops {
			e := c.schedule(op, schedAt, ticket, opIdx, deferred)
			if !detached && e > r.end {
				r.end = e
			}
			opIdx++
		}
		if c.rec != nil {
			c.rec.note(r.end + r.xfer)
		}
		if err != nil {
			return err
		}
		if shape != nil {
			// Charge the run's chip work (and its bus transfer) against the
			// owning tenant's virtual clock at 1/quota speed. A detached
			// flush charges its owner the programs only — the bus transfer
			// belongs to the submitter.
			var work float64
			for _, op := range ops {
				work += op.Dur
			}
			xfer := r.xfer
			if detached {
				xfer = 0
			}
			base := shape.vt
			if schedAt > base {
				base = schedAt
			}
			shape.vt = base + (work+xfer)/shape.quota
		}
		first += n
	}
	if c.f.GCStepPages() > 0 && c.f.GCNeeded() {
		// Debt steps: closed-loop hosts never leave an idle window, so pay one
		// increment of reclamation per ticket behind the submitted work. Host
		// work keeps strict priority: while the chips run behind the clock
		// (backlogged), no step is taken — unless the FTL reports pressure: a
		// trickle step when the pool is down to the GC reserve row, a small
		// burst when it is empty. Always bounded, so a ticket never schedules
		// a whole collection at once.
		steps := 1
		switch c.f.GCPressure() {
		case 2:
			steps = 4
		case 1:
		default:
			if c.maxTill() > c.clock {
				steps = 0
			}
		}
		// Debt paid behind a quota-deferred ticket rides that tenant's
		// reservation track: the churn is the shaped tenant's, so its cost
		// must not land in front of everyone else's arrivals.
		for i := 0; i < steps && c.f.GCNeeded(); i++ {
			worked, err := c.gcStepRun(ticket, c.clock, reqs[0].Trace, sc, batchDeferred)
			if err != nil {
				return err
			}
			if !worked {
				break
			}
		}
	}
	return nil
}

// runLen returns the length of the coalescible run at the head of reqs: a
// maximal sequence of same-kind read or write requests whose LPNs ascend by
// exactly one (writes must also share a hint, and members must share a
// tenant so shaping and quota accounting stay per-namespace). Anything else
// is a singleton.
func runLen(reqs []Request) int {
	head := reqs[0]
	if head.Kind != OpWrite && head.Kind != OpRead {
		return 1
	}
	n := 1
	for n < len(reqs) {
		next := reqs[n]
		if next.Kind != head.Kind || next.LPN != head.LPN+int64(n) || next.Tenant != head.Tenant {
			break
		}
		if head.Kind == OpWrite && next.Hint != head.Hint {
			break
		}
		n++
	}
	return n
}

func (c *ConcurrentDevice) transferTime(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / c.cfg.BusMBps // bytes / (MB/s) = µs
}

// Stats returns the merged device statistics. When Config.RetainLatencies
// is set, Latencies are ordered by (arrival, ticket, batch slot) — a stable,
// deterministic merge that does not depend on which submitter finished
// first. Otherwise Latencies is nil and the streaming LatencyDigest carries
// the distribution in O(1) memory.
func (c *ConcurrentDevice) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	recs := append([]latencyRecord(nil), c.records...)
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.arrival != b.arrival {
			return a.arrival < b.arrival
		}
		if a.ticket != b.ticket {
			return a.ticket < b.ticket
		}
		return a.slot < b.slot
	})
	s := c.counts
	s.Latencies = make([]float64, len(recs))
	for i, r := range recs {
		s.Latencies[i] = r.latency
	}
	return s
}

// PowerCycleReport describes one simulated power cut + restore.
type PowerCycleReport struct {
	CutAt           float64 // simulated instant the power failed, µs
	CheckpointUS    float64 // flash time of the pre-cut GC drain + flush
	CheckpointBytes int     // size of the checkpoint image
	RecoveredAt     float64 // instant the device accepts work again, µs
}

// PowerCycle simulates a power cut with a checkpoint-backed restart: the
// FTL drains its in-flight collection, flushes open buffers and writes a
// checkpoint (the flash work is scheduled on the chip clocks, so the
// pre-cut drain costs simulated time); then the RAM state is discarded and
// rebuilt from the checkpoint over the same (data-retaining) array, exactly
// the Restore path a real controller runs at boot. Every chip clock is
// advanced to cut + recoverUS, so the modeled outage shows up in the
// latency of whatever requests are queued behind it. Telemetry wiring
// (metrics, attribution, GC-ledger observer) carries over to the restored
// FTL. Callers must quiesce submissions first — the cut lands between
// tickets, never inside one.
func (c *ConcurrentDevice) PowerCycle(recoverUS float64) (PowerCycleReport, error) {
	if recoverUS < 0 {
		return PowerCycleReport{}, fmt.Errorf("ssd: negative recovery time %v", recoverUS)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.maxTill()
	if c.clock > start {
		start = c.clock
	}
	// Completions extend past the chip clocks by their bus transfer; the
	// cut must not land before the last byte reached the host.
	c.statsMu.Lock()
	if c.horizon > start {
		start = c.horizon
	}
	c.statsMu.Unlock()
	c.curTrace, c.curTicket = 0, c.next
	var snap []byte
	ops, err := c.f.CollectOps(func() error {
		var e error
		snap, e = c.f.Checkpoint()
		return e
	})
	if err != nil {
		return PowerCycleReport{}, fmt.Errorf("ssd: power-cut checkpoint: %w", err)
	}
	cut := start
	for _, op := range ops {
		if e := c.schedule(op, start, c.next, -1, false); e > cut {
			cut = e
		}
	}
	g, err := ftl.Restore(c.f.Array(), c.cfg.FTL, snap)
	if err != nil {
		return PowerCycleReport{}, fmt.Errorf("ssd: power-cut restore: %w", err)
	}
	g.EnableOpJournal()
	g.SetPayloadOwnership(ftl.BorrowHost)
	if c.met != nil {
		g.SetMetrics(c.met)
	}
	if c.attr != nil {
		g.SetAttribution(c.attr)
	}
	c.f = g
	c.wireGCObserver()
	recovered := cut + recoverUS
	for i := range c.till {
		c.till[i] = recovered
		c.resTill[i] = recovered // pre-cut reservations died with the schedule
		c.chips[i].Till = recovered
	}
	for t := range c.bufPages {
		delete(c.bufPages, t) // the open superpage buffer died with the cut
	}
	if recovered > c.clock {
		c.clock = recovered
	}
	return PowerCycleReport{
		CutAt: cut, CheckpointUS: cut - start,
		CheckpointBytes: len(snap), RecoveredAt: recovered,
	}, nil
}

// ChipStats returns a snapshot of every chip clock's activity, in chip
// order. Safe to call while submissions are in flight.
func (c *ConcurrentDevice) ChipStats() []ChipStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ChipStats(nil), c.chips...)
}

// FillSequential writes every logical page once, submitting in super-word-
// line-sized adjacent-LPN batches so the fill exercises the coalescing path.
func (c *ConcurrentDevice) FillSequential(payload func(lpn int64) []byte) error {
	batch := c.f.Geometry().Lanes() * flash.PagesPerLWL
	reqs := make([]Request, 0, batch)
	flushBatch := func() error {
		if len(reqs) == 0 {
			return nil
		}
		_, err := c.SubmitBatch(reqs)
		reqs = reqs[:0]
		return err
	}
	for lpn := int64(0); lpn < c.f.Capacity(); lpn++ {
		var data []byte
		if payload != nil {
			data = payload(lpn)
		}
		reqs = append(reqs, Request{Kind: OpWrite, LPN: lpn, Data: data})
		if len(reqs) == batch {
			if err := flushBatch(); err != nil {
				return fmt.Errorf("ssd: fill at lpn %d: %w", lpn, err)
			}
		}
	}
	if err := flushBatch(); err != nil {
		return fmt.Errorf("ssd: fill tail: %w", err)
	}
	return nil
}
