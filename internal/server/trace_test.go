package server

import (
	"fmt"
	"math"
	"testing"

	"superfast/internal/telemetry"
)

// TestTracedHopSumsMatchLatency pins the ledger's accounting identity: for
// every traced request the device-side hops (queue + gc + service) sum to
// exactly the latency the response reports, the admission hop is wall-only,
// and the hops chain on the simulated clock (each starts where the previous
// ended).
func TestTracedHopSumsMatchLatency(t *testing.T) {
	dev := testDevice(t)
	led := telemetry.NewLedger("srv")
	dev.SetLedger(led)
	_, addr := startServer(t, dev, Config{Sequenced: true, Ledger: led})
	c := dialRaw(t, addr)

	const n = 240
	span := int64(48)
	resps := make([]Response, n)
	ops := make([]Op, n)
	for i := 0; i < n; i++ {
		f := Frame{
			ID: uint64(i), Seq: uint64(i), Flags: FlagSequenced | FlagTrace,
			Trace: uint64(i) + 1, ParentHop: telemetry.HopClient,
		}
		if i%4 == 3 {
			f.Op = OpRead
			f.LPN = int64(i) % span
		} else {
			f.Op = OpWrite
			f.LPN = int64(i) % span
			f.Payload = []byte(fmt.Sprintf("trace-%d", i))
		}
		ops[i] = f.Op
		resps[i] = c.call(f)
	}

	type devSum struct {
		total              float64
		queue, gc, service int
		gcEnd              float64 // where the gc hop ended, to check chaining
		qEnd               float64
		svStart            float64
	}
	sums := map[uint64]*devSum{}
	admission := 0
	for _, r := range led.Records() {
		switch r.Hop {
		case telemetry.HopAdmission:
			admission++
			if r.SimTS != -1 || r.WallNS < 0 {
				t.Fatalf("admission record not wall-only: %+v", r)
			}
			if r.Status != byte(StatusOK) {
				t.Fatalf("admission status %d", r.Status)
			}
			if r.Parent != telemetry.HopClient {
				t.Fatalf("admission parent %v", r.Parent)
			}
		case telemetry.HopQueue, telemetry.HopGC, telemetry.HopService:
			if r.LPN < 0 {
				continue // background GC-step record, not request-attributed
			}
			s := sums[r.Trace]
			if s == nil {
				s = &devSum{}
				sums[r.Trace] = s
			}
			s.total += r.SimUS
			if r.SimUS < 0 {
				t.Fatalf("negative hop duration: %+v", r)
			}
			switch r.Hop {
			case telemetry.HopQueue:
				s.queue++
				s.qEnd = r.SimTS + r.SimUS
			case telemetry.HopGC:
				s.gc++
				s.gcEnd = r.SimTS + r.SimUS
			case telemetry.HopService:
				s.service++
				s.svStart = r.SimTS
			}
		}
	}
	if admission != n {
		t.Fatalf("admission records %d, want %d", admission, n)
	}

	checked := 0
	for i, r := range resps {
		if r.Status != StatusOK {
			continue // early reads of unwritten pages answer BadRequest
		}
		s := sums[uint64(i)+1]
		if s == nil {
			t.Fatalf("op %d: no device hops recorded", i)
		}
		if s.queue != 1 || s.service != 1 {
			t.Fatalf("op %d: queue=%d service=%d records", i, s.queue, s.service)
		}
		if ops[i] == OpWrite && s.gc != 1 {
			t.Fatalf("write %d: %d gc records, want exactly 1 (even at zero)", i, s.gc)
		}
		if ops[i] == OpRead && s.gc != 0 {
			t.Fatalf("read %d: %d gc records, want 0", i, s.gc)
		}
		if math.Abs(s.total-r.Latency) > 1e-6 {
			t.Fatalf("op %d (%v): hops sum to %v µs, response says %v µs", i, ops[i], s.total, r.Latency)
		}
		// The hops chain: queue ends where gc starts (writes), service starts
		// where the hop before it ended.
		prevEnd := s.qEnd
		if ops[i] == OpWrite {
			if math.Abs(s.gcEnd-(s.qEnd+(s.gcEnd-s.qEnd))) > 1e-6 { // gc starts at qEnd by construction
				t.Fatalf("op %d: gc hop detached", i)
			}
			prevEnd = s.gcEnd
		}
		if math.Abs(s.svStart-prevEnd) > 1e-6 {
			t.Fatalf("op %d: service starts at %v, previous hop ended at %v", i, s.svStart, prevEnd)
		}
		checked++
	}
	if checked < n/2 {
		t.Fatalf("only %d/%d ops were checkable", checked, n)
	}
}

// TestUntracedFramesRecordNothing: plain v1 frames (no FlagTrace) and traced
// frames with a zero trace id leave the ledger untouched, so an untraced
// replay is bit-for-bit the pre-trace protocol.
func TestUntracedFramesRecordNothing(t *testing.T) {
	dev := testDevice(t)
	led := telemetry.NewLedger("srv")
	dev.SetLedger(led)
	_, addr := startServer(t, dev, Config{Ledger: led})
	c := dialRaw(t, addr)

	if r := c.call(Frame{Op: OpWrite, ID: 1, LPN: 0, Payload: []byte("plain")}); r.Status != StatusOK {
		t.Fatalf("write: %v", r.Status)
	}
	if r := c.call(Frame{Op: OpRead, ID: 2, LPN: 0}); r.Status != StatusOK {
		t.Fatalf("read: %v", r.Status)
	}
	// FlagTrace with trace id 0 is "untraced" by convention.
	if r := c.call(Frame{Op: OpRead, ID: 3, LPN: 0, Flags: FlagTrace, ParentHop: telemetry.HopNone}); r.Status != StatusOK {
		t.Fatalf("zero-trace read: %v", r.Status)
	}
	if got := led.Len(); got != 0 {
		t.Fatalf("untraced traffic left %d ledger records", got)
	}

	// PING advertises the capability to anyone who asks.
	r := c.call(Frame{Op: OpPing, ID: 4})
	if string(r.Payload) != TraceCap {
		t.Fatalf("ping payload %q, want %q", r.Payload, TraceCap)
	}
}
