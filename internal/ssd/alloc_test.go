package ssd

import (
	"testing"

	"superfast/internal/flash"
	"superfast/internal/pv"
)

// TestConcurrentSubmitAllocs pins the telemetry-disabled Submit path's
// allocation count. One single-request submission allocates only the boxed
// request slice and the completion slice — the run list, per-run arrivals
// and data tables come from the pooled submit scratch, the reorder-buffer
// latency slice is recycled by the digest drain, and the conservative-
// horizon core removed the per-op reply buffers entirely. Nothing is
// allocated per flash operation: the flash array and the latency kernel
// underneath run allocation-free in steady state. The bound leaves one
// object of slack for sync.Pool refills after a GC. A rise here means
// something on the per-request path started allocating again.
func TestConcurrentSubmitAllocs(t *testing.T) {
	g := flash.TestGeometry()
	g.BlocksPerPlane = 8
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	cfg := DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	d, err := NewConcurrent(flash.MustNewArray(g, pv.New(p), flash.DefaultECC()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := d.Submit(Request{Kind: OpRead, LPN: 7}); err != nil {
			t.Fatal(err)
		}
	})
	if n > 3 {
		t.Errorf("telemetry-disabled read Submit allocates %.1f objects, want ≤ 3", n)
	}
}
