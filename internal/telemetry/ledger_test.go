package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestHopJSONRoundTrip(t *testing.T) {
	for h := Hop(0); h.Valid(); h++ {
		b, err := json.Marshal(h)
		if err != nil {
			t.Fatalf("marshal %v: %v", h, err)
		}
		var back Hop
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != h {
			t.Fatalf("%v round-tripped to %v", h, back)
		}
	}
	var none Hop
	if err := json.Unmarshal([]byte(`"none"`), &none); err != nil || none != HopNone {
		t.Fatalf("none: %v %v", none, err)
	}
	var bad Hop
	if err := json.Unmarshal([]byte(`"warp"`), &bad); err == nil {
		t.Fatal("unknown hop name accepted")
	}
	if HopNone.Valid() {
		t.Fatal("HopNone claims validity")
	}
	if !HopClient.WallOnly() || !HopAdmission.WallOnly() || HopQueue.WallOnly() {
		t.Fatal("wall-only classification wrong")
	}
}

// TestSortRecordsTotal: the sort key covers every field, so any permutation
// of a record set (including near-duplicates) sorts to the same order —
// the property the cross-worker golden rests on.
func TestSortRecordsTotal(t *testing.T) {
	base := []HopRecord{
		{Proc: "a", Trace: 1, Hop: HopQueue, Seq: 1, LPN: 3, SimTS: 10, SimUS: 5},
		{Proc: "a", Trace: 1, Hop: HopQueue, Seq: 1, LPN: 3, SimTS: 10, SimUS: 6},
		{Proc: "b", Trace: 1, Hop: HopQueue, Seq: 1, LPN: 3, SimTS: 10, SimUS: 5},
		{Proc: "a", Trace: 1, Hop: HopService, Seq: 1, LPN: 3, SimTS: 15, SimUS: 2},
		{Proc: "a", Trace: 2, Hop: HopClient, Seq: 2, LPN: 4, SimTS: -1, WallNS: 100},
		{Proc: "a", Trace: 2, Hop: HopClient, Seq: 2, LPN: 4, SimTS: -1, WallNS: 90},
		{Proc: "v", Trace: 2, Hop: HopProxy, Leg: 1, Seq: 2, LPN: 4, SimTS: -1},
		{Proc: "v", Trace: 2, Hop: HopProxy, Leg: 0, Seq: 2, LPN: 4, SimTS: -1},
		{Proc: "s", Trace: 2, Hop: HopGC, Parent: HopNone, Seq: 9, LPN: -1, SimTS: 50, SimUS: 80, Pages: 3},
	}
	want := append([]HopRecord(nil), base...)
	SortRecords(want)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := append([]HopRecord(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		SortRecords(perm)
		for i := range perm {
			if perm[i] != want[i] {
				t.Fatalf("trial %d: order diverges at %d: %+v vs %+v", trial, i, perm[i], want[i])
			}
		}
	}
}

func TestShardRoundTripAndMerge(t *testing.T) {
	l1 := NewLedger("srv0")
	l1.Record(HopRecord{Trace: 2, Hop: HopQueue, Parent: HopProxy, Seq: 2, LPN: 8, SimTS: 100, SimUS: 4})
	l1.Record(HopRecord{Trace: 1, Hop: HopService, Parent: HopProxy, Seq: 1, LPN: 3, SimTS: 60, SimUS: 90})
	l2 := NewLedger("load")
	l2.Record(HopRecord{Trace: 1, Hop: HopClient, Parent: HopNone, Seq: 1, LPN: 3, SimTS: -1, WallNS: 2500})

	var buf bytes.Buffer
	if err := l1.WriteShard(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadShard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("shard round-tripped %d records, want 2", len(back))
	}
	// WriteShard emits sorted order; trace 1 leads.
	if back[0].Trace != 1 || back[0].Hop != HopService || back[0].Proc != "srv0" {
		t.Fatalf("first record %+v", back[0])
	}
	if back[1].SimUS != 4 || back[1].Parent != HopProxy {
		t.Fatalf("second record %+v", back[1])
	}

	merged := MergeRecords(back, l2.Records())
	if len(merged) != 3 {
		t.Fatalf("merged %d records", len(merged))
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool {
		return merged[i].Trace < merged[j].Trace ||
			(merged[i].Trace == merged[j].Trace && merged[i].Hop < merged[j].Hop)
	}) {
		t.Fatalf("merge not in canonical order: %+v", merged)
	}

	// Malformed lines fail with their line number.
	if _, err := ReadShard(strings.NewReader("{\"hop\":\"queue\"}\nnot json\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed shard error: %v", err)
	}
	// Blank lines are fine.
	if recs, err := ReadShard(strings.NewReader("\n\n")); err != nil || len(recs) != 0 {
		t.Fatalf("blank shard: %v %v", recs, err)
	}
}

func TestLedgerDigestFeeds(t *testing.T) {
	l := NewLedger("p")
	l.Record(HopRecord{Trace: 1, Hop: HopClient, SimTS: -1, WallNS: 3000}) // 3 µs wall
	l.Record(HopRecord{Trace: 1, Hop: HopQueue, SimTS: 5, SimUS: 42})
	if s := l.HopSummary(HopClient); s.N != 1 || s.Mean != 3 {
		t.Fatalf("wall-only digest %+v", s)
	}
	if s := l.HopSummary(HopQueue); s.N != 1 || s.Mean != 42 {
		t.Fatalf("sim digest %+v", s)
	}
	if l.Len() != 2 {
		t.Fatalf("len %d", l.Len())
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset kept records")
	}
	if s := l.HopSummary(HopQueue); s.N != 1 {
		t.Fatal("reset wiped the streaming digest")
	}
	// A nil ledger swallows records (call sites skip the nil check).
	var nl *Ledger
	nl.Record(HopRecord{Trace: 1, Hop: HopQueue})
}

func TestLedgerBreakdown(t *testing.T) {
	var recs []HopRecord
	// Trace 1: queue-dominated. Trace 2: service-dominated. Trace 3:
	// gc-dominated via two gc records summing past its service.
	recs = append(recs,
		HopRecord{Trace: 1, Hop: HopClient, SimTS: -1, WallNS: 7000},
		HopRecord{Trace: 1, Hop: HopQueue, SimTS: 0, SimUS: 100},
		HopRecord{Trace: 1, Hop: HopService, SimTS: 100, SimUS: 60},
		HopRecord{Trace: 2, Hop: HopQueue, SimTS: 0, SimUS: 10},
		HopRecord{Trace: 2, Hop: HopService, SimTS: 10, SimUS: 90},
		HopRecord{Trace: 3, Hop: HopGC, SimTS: 0, SimUS: 50, Pages: 4},
		HopRecord{Trace: 3, Hop: HopGC, SimTS: 50, SimUS: 40, Pages: 2},
		HopRecord{Trace: 3, Hop: HopService, SimTS: 90, SimUS: 80},
	)
	b := LedgerBreakdown(recs)
	if b.Traces != 3 {
		t.Fatalf("traces %d", b.Traces)
	}
	if b.Hops[HopQueue].N != 2 || b.Hops[HopQueue].Max != 100 {
		t.Fatalf("queue %+v", b.Hops[HopQueue])
	}
	if b.Hops[HopGC].Pages != 6 {
		t.Fatalf("gc pages %d", b.Hops[HopGC].Pages)
	}
	// Wall-only hop reports wall µs.
	if b.Hops[HopClient].Mean != 7 {
		t.Fatalf("client mean %v", b.Hops[HopClient].Mean)
	}
	// Slowest-hop attribution: one trace each.
	if b.Hops[HopQueue].Slowest != 1 || b.Hops[HopService].Slowest != 1 || b.Hops[HopGC].Slowest != 1 {
		t.Fatalf("slowest attribution q=%d s=%d gc=%d",
			b.Hops[HopQueue].Slowest, b.Hops[HopService].Slowest, b.Hops[HopGC].Slowest)
	}
	// Wall-only hops never win attribution.
	if b.Hops[HopClient].Slowest != 0 {
		t.Fatal("wall-only hop won slowest attribution")
	}

	var table bytes.Buffer
	if err := b.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	out := table.String()
	for _, name := range []string{"client*", "proxy", "admission*", "queue", "gc", "service", "traces: 3"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table missing %q:\n%s", name, out)
		}
	}
}

func TestWriteLedgerChromeDeterministic(t *testing.T) {
	recs := []HopRecord{
		{Proc: "load", Trace: 1, Hop: HopClient, Parent: HopNone, Seq: 0, LPN: 5, SimTS: -1, WallNS: 1234},
		{Proc: "srv", Trace: 1, Hop: HopQueue, Parent: HopClient, Seq: 0, LPN: 5, SimTS: 20, SimUS: 3},
		{Proc: "srv", Trace: 1, Hop: HopService, Parent: HopClient, Seq: 0, LPN: 5, SimTS: 23, SimUS: 71, Status: 0},
		{Proc: "srv", Trace: 2, Hop: HopGC, Parent: HopNone, Seq: 7, LPN: -1, SimTS: 99, SimUS: 200, Pages: 12},
	}
	render := func(in []HopRecord, wall bool) string {
		var b bytes.Buffer
		if err := WriteLedgerChrome(&b, in, wall); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render(recs, false)
	// Permuting the input changes nothing: the writer sorts.
	perm := []HopRecord{recs[3], recs[1], recs[0], recs[2]}
	if got := render(perm, false); got != out {
		t.Fatalf("permuted input changed output:\n%s\nvs\n%s", got, out)
	}
	// Wall-clock jitter changes nothing without -wall.
	jit := append([]HopRecord(nil), recs...)
	jit[0].WallNS = 999999
	if got := render(jit, false); got != out {
		t.Fatal("wall-clock change leaked into deterministic export")
	}
	if !strings.Contains(render(recs, true), `"wall_ns":1234`) {
		t.Fatal("-wall export lacks wall_ns args")
	}
	if strings.Contains(out, "wall_ns") {
		t.Fatal("deterministic export carries wall_ns")
	}

	// Valid Chrome JSON: instants anchored at the trace's earliest sim ts.
	var evs []map[string]any
	if err := json.Unmarshal([]byte(out), &evs); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	var sawInstant, sawSpan bool
	for _, ev := range evs {
		switch ev["ph"] {
		case "i":
			sawInstant = true
			if ev["ts"].(float64) != 20 { // trace 1's earliest simulated ts
				t.Fatalf("instant anchored at %v, want 20", ev["ts"])
			}
		case "X":
			sawSpan = true
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("span without dur: %v", ev)
			}
		}
	}
	if !sawInstant || !sawSpan {
		t.Fatalf("export lacks instant/span mix: %s", out)
	}
}

func TestWriteLedgerPrometheus(t *testing.T) {
	l := NewLedger("p")
	l.Record(HopRecord{Trace: 1, Hop: HopQueue, SimTS: 0, SimUS: 5})
	l.Record(HopRecord{Trace: 1, Hop: HopClient, SimTS: -1, WallNS: 4000})
	var b bytes.Buffer
	bw := bufio.NewWriter(&b)
	WriteLedgerPrometheus(bw, l)
	bw.Flush()
	out := b.String()
	for _, want := range []string{
		`hop_latency_us{hop="queue",quantile="0.5"} 5`,
		`hop_latency_us_count{hop="queue"} 1`,
		`hop_latency_us{hop="client",quantile="0.5"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `hop="gc"`) {
		t.Fatal("empty hop emitted series")
	}
	// A nil ledger writes nothing.
	var nb bytes.Buffer
	nbw := bufio.NewWriter(&nb)
	WriteLedgerPrometheus(nbw, nil)
	nbw.Flush()
	if nb.Len() != 0 {
		t.Fatalf("nil ledger wrote %q", nb.String())
	}
}
