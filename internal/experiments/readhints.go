package experiments

import (
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
)

func init() {
	register("read-hints", runReadHints)
}

// runReadHints validates the optional placement refinement of §V-D: writing
// small random (hot) data to high-speed superpages. With HintSmall, hot
// pages land on LSB pages (the fastest to read); without hints they spread
// over LSB/CSB/MSB. The hot-read latency gap is the payoff.
func runReadHints(cfg Config) (*Result, error) {
	g, p := deviceGeometry(cfg)
	t := &stats.Table{
		Title:   "§V-D — page-type-aware placement: hot-data read latency",
		Headers: []string{"Placement", "Mean read µs", "P95 µs", "LSB hits %"},
	}
	var means []float64
	for _, hinted := range []bool{false, true} {
		arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
		if err != nil {
			return nil, err
		}
		dcfg := ssd.DefaultConfig()
		dcfg.FTL.Overprovision = 0.25
		dev, err := ssd.New(arr, dcfg)
		if err != nil {
			return nil, err
		}
		dev.SetAttribution(cfg.Attr)
		capacity := dev.FTL().Capacity()
		hotN := capacity / 4
		// Interleave hot (small random) and cold (batch) writes 1:3, the
		// traffic mix the hint mechanism needs: a TLC word-line always
		// programs one LSB, one CSB and one MSB page, so hot data can only
		// monopolize the fast LSB pages when cold data fills the rest.
		hintHot, hintCold := ftl.HintNone, ftl.HintNone
		if hinted {
			hintHot, hintCold = ftl.HintSmall, ftl.HintBatch
		}
		cold := hotN
		for lpn := int64(0); lpn < hotN; lpn++ {
			if _, err := dev.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: lpn, Data: []byte("hot"), Hint: hintHot}); err != nil {
				return nil, err
			}
			for j := 0; j < 3 && cold < capacity; j++ {
				if _, err := dev.Submit(ssd.Request{Kind: ssd.OpWrite, LPN: cold, Data: []byte("cold"), Hint: hintCold}); err != nil {
					return nil, err
				}
				cold++
			}
		}
		if _, err := dev.FTL().Flush(); err != nil {
			return nil, err
		}
		// Read the hot region back and classify page types.
		var lats []float64
		lsb := 0
		for lpn := int64(0); lpn < hotN; lpn++ {
			c, err := dev.Submit(ssd.Request{Kind: ssd.OpRead, LPN: lpn})
			if err != nil {
				return nil, err
			}
			lats = append(lats, c.Service)
			if dev.FTL().PageTypeOf(lpn) == pv.LSB {
				lsb++
			}
		}
		sm := stats.Summarize(lats)
		name := "unhinted"
		if hinted {
			name = "HintSmall (LSB)"
		}
		t.AddRow(name, stats.FmtUS(sm.Mean), stats.FmtUS(sm.P95),
			fmt.Sprintf("%.0f%%", 100*float64(lsb)/float64(hotN)))
		means = append(means, sm.Mean)
	}
	text := ""
	if len(means) == 2 {
		text = fmt.Sprintf("hot-read latency improvement from LSB placement: %s\n",
			stats.FmtPct(stats.Improvement(means[0], means[1])))
	}
	return &Result{ID: "read-hints", Tables: []*stats.Table{t}, Text: text}, nil
}
