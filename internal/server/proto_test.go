package server

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/ftl"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpRead, ID: 1, LPN: 42},
		{Op: OpWrite, ID: 2, LPN: 7, Payload: []byte("hello"), Hint: ftl.HintSmall},
		{Op: OpTrim, ID: 3, LPN: 0},
		{Op: OpFlush, ID: 4},
		{Op: OpStat, ID: 5},
		{Op: OpPing, ID: 6},
		{Op: OpWrite, ID: 7, LPN: 9, Flags: FlagSequenced, Seq: 123, Arrival: 4.5, Payload: []byte{0}},
	}
	var buf []byte
	for _, f := range frames {
		var err error
		buf, err = AppendFrame(buf, f)
		if err != nil {
			t.Fatalf("append %+v: %v", f, err)
		}
	}
	off := 0
	for i, want := range frames {
		got, n, err := DecodeFrame(buf[off:])
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		off += n
		if got.Op != want.Op || got.Flags != want.Flags || got.Hint != want.Hint ||
			got.ID != want.ID || got.LPN != want.LPN || got.Seq != want.Seq ||
			got.Arrival != want.Arrival || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestReadFrameStream(t *testing.T) {
	var buf []byte
	buf, _ = AppendFrame(buf, Frame{Op: OpWrite, ID: 9, LPN: 3, Payload: []byte("abc")})
	buf, _ = AppendFrame(buf, Frame{Op: OpRead, ID: 10, LPN: 3})
	r := bytes.NewReader(buf)
	f1, n1, err := ReadFrame(r)
	if err != nil || f1.ID != 9 {
		t.Fatalf("frame 1: %+v, %v", f1, err)
	}
	f2, n2, err := ReadFrame(r)
	if err != nil || f2.ID != 10 {
		t.Fatalf("frame 2: %+v, %v", f2, err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("accounted %d of %d wire bytes", n1+n2, len(buf))
	}
	if _, _, err := ReadFrame(r); err == nil {
		t.Fatal("empty stream should error")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	valid, _ := AppendFrame(nil, Frame{Op: OpWrite, ID: 1, LPN: 2, Payload: []byte("xy")})
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShortFrame},
		{"short prefix", valid[:3], ErrShortFrame},
		{"truncated body", valid[:len(valid)-1], ErrShortFrame},
		{"length below header", mut(func(b []byte) { b[3] = reqHeaderLen - 1; b[2] = 0; b[1] = 0; b[0] = 0 }), ErrFrameSize},
		{"length oversized", mut(func(b []byte) { b[0] = 0xff }), ErrFrameSize},
		{"bad version", mut(func(b []byte) { b[4] = 99 }), ErrBadFrame},
		{"opcode zero", mut(func(b []byte) { b[5] = 0 }), ErrBadFrame},
		{"opcode high", mut(func(b []byte) { b[5] = byte(OpFault) + 1 }), ErrBadFrame},
		{"unknown flag", mut(func(b []byte) { b[6] = 0x80 }), ErrBadFrame},
		{"bad hint", mut(func(b []byte) { b[7] = byte(ftl.HintBatch) + 1 }), ErrBadFrame},
		{"payload on read", mut(func(b []byte) { b[5] = byte(OpRead) }), ErrBadFrame},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Negative and non-finite arrivals are rejected.
	for _, arr := range []float64{-1, math.NaN(), math.Inf(1)} {
		b, _ := AppendFrame(nil, Frame{Op: OpRead, ID: 1})
		bits := math.Float64bits(arr)
		for i := 0; i < 8; i++ {
			b[4+28+i] = byte(bits >> (56 - 8*i))
		}
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("arrival %v: err = %v, want ErrBadFrame", arr, err)
		}
	}

	if _, err := AppendFrame(nil, Frame{Op: OpWrite, Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrFrameSize) {
		t.Errorf("oversized append: %v", err)
	}
	if _, err := AppendFrame(nil, Frame{Op: 0}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("bad opcode append: %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, ID: 1, Latency: 123.5, Payload: []byte("data")},
		{Status: StatusUncorrectable, ID: 2, Payload: []byte("ecc failed")},
		{Status: StatusRejected, ID: 3},
	}
	var buf []byte
	for _, r := range resps {
		var err error
		buf, err = AppendResponse(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	sr := bytes.NewReader(buf)
	total := 0
	for i, want := range resps {
		got, n, err := ReadResponse(sr)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		total += n
		if got.Status != want.Status || got.ID != want.ID || got.Latency != want.Latency ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("response %d: got %+v want %+v", i, got, want)
		}
	}
	if total != len(buf) {
		t.Fatalf("accounted %d of %d bytes", total, len(buf))
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	valid, _ := AppendResponse(nil, Response{Status: StatusOK, ID: 1, Latency: 2, Payload: []byte("p")})
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShortFrame},
		{"truncated", valid[:len(valid)-1], ErrShortFrame},
		{"undersized length", mut(func(b []byte) { b[0], b[1], b[2], b[3] = 0, 0, 0, respHeaderLen - 1 }), ErrFrameSize},
		{"oversized length", mut(func(b []byte) { b[0] = 0xff }), ErrFrameSize},
		{"bad version", mut(func(b []byte) { b[4] = 7 }), ErrBadFrame},
		{"reserved set", mut(func(b []byte) { b[6] = 1 }), ErrBadFrame},
		{"bad status", mut(func(b []byte) { b[5] = byte(StatusInternal) + 1 }), ErrBadFrame},
	}
	for _, tc := range cases {
		if _, _, err := DecodeResponse(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	b := mut(func(b []byte) {
		bits := math.Float64bits(math.NaN())
		for i := 0; i < 8; i++ {
			b[4+12+i] = byte(bits >> (56 - 8*i))
		}
	})
	if _, _, err := DecodeResponse(b); !errors.Is(err, ErrBadFrame) {
		t.Errorf("NaN latency: %v", err)
	}
	if _, err := AppendResponse(nil, Response{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrFrameSize) {
		t.Errorf("oversized append: %v", err)
	}
	if _, _, err := ReadResponse(bytes.NewReader(nil)); err == nil {
		t.Error("empty reader should error")
	}
	if _, _, err := ReadResponse(bytes.NewReader([]byte{0, 0, 0, 1})); !errors.Is(err, ErrFrameSize) {
		t.Error("bad stream length should error")
	}
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 1})); !errors.Is(err, ErrFrameSize) {
		t.Error("bad frame stream length should error")
	}
}

func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		want Status
	}{
		{nil, StatusOK},
		{ftl.ErrDataLoss, StatusDataLoss},
		{fmt.Errorf("wrap: %w", flash.ErrUncorrectable), StatusUncorrectable},
		{ftl.ErrOutOfRange, StatusBadRequest},
		{ftl.ErrUnmapped, StatusBadRequest},
		{errors.New("boom"), StatusInternal},
	}
	for _, tc := range cases {
		if got := StatusFor(tc.err); got != tc.want {
			t.Errorf("StatusFor(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for op := OpRead; op <= OpPing; op++ {
		if strings.HasPrefix(op.String(), "Op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if !strings.HasPrefix(Op(0).String(), "Op(") {
		t.Error("unknown opcode should fall back")
	}
	for st := StatusOK; st <= StatusInternal; st++ {
		if strings.HasPrefix(st.String(), "Status(") {
			t.Errorf("status %d has no name", st)
		}
	}
	if !strings.HasPrefix(Status(200).String(), "Status(") {
		t.Error("unknown status should fall back")
	}
}

func TestResponseErr(t *testing.T) {
	if err := (Response{Status: StatusOK}).Err(); err != nil {
		t.Fatalf("OK: %v", err)
	}
	err := (Response{Status: StatusDataLoss, Payload: []byte("gone")}).Err()
	if err == nil || !strings.Contains(err.Error(), "DATA_LOSS") || !strings.Contains(err.Error(), "gone") {
		t.Fatalf("err = %v", err)
	}
	if err := (Response{Status: StatusRejected}).Err(); err == nil || !strings.Contains(err.Error(), "REJECTED") {
		t.Fatalf("err = %v", err)
	}
}
