package volume

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"superfast/internal/ftl"
	"superfast/internal/prng"
	"superfast/internal/server"
	"superfast/internal/server/client"
)

// startProxy serves a volume's wire frontend on a loopback listener.
func startProxy(t testing.TB, v *Volume) (*Proxy, string) {
	t.Helper()
	p := NewProxy(v, ProxyConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		p.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("proxy serve: %v", err)
		}
	})
	return p, ln.Addr().String()
}

func TestProxyBasics(t *testing.T) {
	v, _ := startCluster(t, 3, server.Config{}, Config{Stripe: 2})
	p, addr := startProxy(t, v)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if r, err := c.Write(7, []byte("through-the-proxy"), ftl.HintSmall); err != nil || r.Status != server.StatusOK {
		t.Fatalf("write: %v %v", err, r.Status)
	}
	r, err := c.Read(7)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.HasPrefix(r.Payload, []byte("through-the-proxy")) {
		t.Fatalf("read %q", r.Payload[:20])
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := c.Trim(7); err != nil {
		t.Fatalf("trim: %v", err)
	}

	// An unmodified client decodes the cluster STAT as a server snapshot.
	snap, err := c.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if snap.Capacity != v.Space() || snap.PageSize != v.PageSize() {
		t.Fatalf("stat capacity %d/pagesize %d, want %d/%d", snap.Capacity, snap.PageSize, v.Space(), v.PageSize())
	}
	if snap.Server.Conns != 1 {
		t.Fatalf("frontend conns %d, want 1", snap.Server.Conns)
	}
	if snap.Device.Writes != 1 || snap.Device.Reads != 1 || snap.Device.Trims != 1 {
		t.Fatalf("merged device counters %+v", snap.Device)
	}

	// A sequenced frame against an unsequenced volume is refused.
	if r, err := c.Do(server.Frame{Op: server.OpWrite, LPN: 0, Payload: []byte("x"), Flags: server.FlagSequenced}); err != nil || r.Status != server.StatusBadRequest {
		t.Fatalf("mismatched sequenced flag: %v %v", err, r.Status)
	}
	// An out-of-range LPN is a BadRequest, not a dead connection.
	if r, err := c.Do(server.Frame{Op: server.OpRead, LPN: v.Space() + 5}); err != nil || r.Status != server.StatusBadRequest {
		t.Fatalf("out-of-range: %v %v", err, r.Status)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after bad request: %v", err)
	}
	if got := p.Stats(); got.Accepted == 0 || got.Rejected == 0 {
		t.Fatalf("proxy stats %+v", got)
	}
}

// traceOp is one deterministic replay operation.
type traceOp struct {
	op      server.Op
	lpn     int64
	payload []byte
}

// buildTrace generates a deterministic op mix over [0, span).
func buildTrace(n int, span int64, seed uint64) []traceOp {
	src := prng.New(seed, 0x7e17)
	ops := make([]traceOp, n)
	for i := range ops {
		lpn := int64(src.Intn(int(span)))
		switch r := src.Float64(); {
		case r < 0.55:
			ops[i] = traceOp{op: server.OpWrite, lpn: lpn,
				payload: []byte(fmt.Sprintf("replay-%d-lpn-%d", i, lpn))}
		case r < 0.90:
			ops[i] = traceOp{op: server.OpRead, lpn: lpn}
		default:
			ops[i] = traceOp{op: server.OpTrim, lpn: lpn}
		}
	}
	return ops
}

// replaySequenced replays the trace against addr over conns pipelined
// connections, stamping dense global tickets, and returns each op's response
// (status + payload) plus a final sequenced readback of every page in span.
func replaySequenced(t *testing.T, addr string, ops []traceOp, conns int, span int64) ([]server.Response, [][]byte) {
	t.Helper()
	cs := make([]*client.Client, conns)
	for i := range cs {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cs[i] = c
	}
	calls := make([]*client.Call, len(ops))
	for i, op := range ops {
		f := server.Frame{
			Op: op.op, LPN: op.lpn, Payload: op.payload,
			Flags: server.FlagSequenced, Seq: uint64(i),
		}
		call, err := cs[i%conns].Start(f)
		if err != nil {
			t.Fatalf("start op %d: %v", i, err)
		}
		calls[i] = call
	}
	resps := make([]server.Response, len(ops))
	for i, call := range calls {
		r, err := call.Wait()
		if err != nil {
			t.Fatalf("wait op %d: %v", i, err)
		}
		resps[i] = r
	}
	// Final readback continues the dense ticket space on one connection.
	final := make([][]byte, span)
	seq := uint64(len(ops))
	for lpn := int64(0); lpn < span; lpn++ {
		r, err := cs[0].Do(server.Frame{Op: server.OpRead, LPN: lpn, Flags: server.FlagSequenced, Seq: seq})
		seq++
		if err != nil {
			t.Fatalf("readback %d: %v", lpn, err)
		}
		if r.Status == server.StatusOK {
			final[lpn] = r.Payload
		}
	}
	return resps, final
}

// TestShardedReplayMatchesDirect is the determinism acceptance test: the
// same sequenced trace replayed through a 3-backend sharded volume and
// against a single direct device must produce byte-identical read payloads
// op for op, and a byte-identical final image.
func TestShardedReplayMatchesDirect(t *testing.T) {
	v, _ := startCluster(t, 3, server.Config{Sequenced: true}, Config{Stripe: 4, Sequenced: true})
	_, volAddr := startProxy(t, v)

	direct := startBackend(t, server.Config{Sequenced: true})
	dc, err := client.Dial(direct.addr)
	if err != nil {
		t.Fatal(err)
	}
	dsnap, err := dc.Stat()
	dc.Close()
	if err != nil {
		t.Fatal(err)
	}

	span := v.Space()
	if dsnap.Capacity < span {
		span = dsnap.Capacity
	}
	if span > 128 {
		span = 128
	}
	ops := buildTrace(600, span, 42)

	volResps, volFinal := replaySequenced(t, volAddr, ops, 2, span)
	dirResps, dirFinal := replaySequenced(t, direct.addr, ops, 2, span)

	for i := range ops {
		if volResps[i].Status != dirResps[i].Status {
			t.Fatalf("op %d (%v lpn %d): volume %v, direct %v",
				i, ops[i].op, ops[i].lpn, volResps[i].Status, dirResps[i].Status)
		}
		// Error payloads embed shard-local LPNs and legitimately differ;
		// data payloads must match byte for byte.
		if ops[i].op == server.OpRead && volResps[i].Status == server.StatusOK &&
			!bytes.Equal(volResps[i].Payload, dirResps[i].Payload) {
			t.Fatalf("op %d: read payloads diverge (lpn %d)", i, ops[i].lpn)
		}
	}
	for lpn := range volFinal {
		if !bytes.Equal(volFinal[lpn], dirFinal[lpn]) {
			t.Fatalf("final image diverges at lpn %d", lpn)
		}
	}
}

// TestShardedReplayDeterministic: the same trace through two fresh sharded
// clusters produces identical per-backend device statistics — the sequenced
// scatter itself is reproducible, not just the data.
func TestShardedReplayDeterministic(t *testing.T) {
	run := func() ([]server.Response, []uint64) {
		v, _ := startCluster(t, 3, server.Config{Sequenced: true}, Config{Stripe: 4, Sequenced: true})
		_, addr := startProxy(t, v)
		span := v.Space()
		if span > 96 {
			span = 96
		}
		ops := buildTrace(400, span, 7)
		resps, _ := replaySequenced(t, addr, ops, 3, 0)
		snap := v.ClusterStat()
		var reqs []uint64
		for _, b := range snap.Backends {
			reqs = append(reqs, b.Snap.Device.Requests, b.Snap.Device.Writes, b.Snap.Device.Reads, b.Snap.FTL.GCWrites)
		}
		return resps, reqs
	}
	r1, s1 := run()
	r2, s2 := run()
	for i := range r1 {
		if r1[i].Status != r2[i].Status || !bytes.Equal(r1[i].Payload, r2[i].Payload) ||
			r1[i].Latency != r2[i].Latency {
			t.Fatalf("op %d diverges between runs", i)
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("per-backend counter %d diverges: %d vs %d", i, s1[i], s2[i])
		}
	}
}

// TestVolumeDrainUnderLoad: shutting the proxy down under a full write
// pipeline answers every in-flight request (OK or Rejected — none hang, none
// vanish), returns cleanly, and leaves the backends healthy.
func TestVolumeDrainUnderLoad(t *testing.T) {
	v, bks := startCluster(t, 3, server.Config{}, Config{Stripe: 2})
	p := NewProxy(v, ProxyConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A completed write up front guarantees lpn 0 is mapped for the
	// post-drain volume probe.
	if r, werr := c.Write(0, []byte("pre-drain"), ftl.HintNone); werr != nil || r.Status != server.StatusOK {
		t.Fatalf("pre-drain write: %v %v", werr, r.Status)
	}

	const n = 512
	calls := make([]*client.Call, 0, n)
	started := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			call, err := c.Start(server.Frame{
				Op: server.OpWrite, LPN: int64(i) % v.Space(),
				Payload: []byte(fmt.Sprintf("drain-%d", i)),
			})
			if err != nil {
				break // the drained proxy closed the connection
			}
			calls = append(calls, call)
			if i == 64 {
				close(started)
			}
		}
		if len(calls) <= 64 {
			close(started)
		}
	}()

	<-started
	time.Sleep(50 * time.Millisecond) // let the proxy answer a batch first
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	var ok, rejected, failed int
	deadline := time.After(20 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, call := range calls {
			r, err := call.Wait()
			switch {
			case err != nil:
				failed++ // connection closed under the pipeline — typed, not hung
				if !errors.Is(err, client.ErrConnLost) {
					t.Errorf("unexpected wait error: %v", err)
				}
			case r.Status == server.StatusOK:
				ok++
			case r.Status == server.StatusRejected:
				rejected++
			default:
				t.Errorf("unexpected drain status %v", r.Status)
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("calls hung through proxy drain")
	}
	if ok == 0 {
		t.Fatal("no request completed before the drain")
	}
	t.Logf("drain: %d ok, %d rejected, %d conn-lost", ok, rejected, failed)

	// The backends survive the frontend's death and the volume stays usable.
	for i, b := range bks {
		cc, err := client.Dial(b.addr)
		if err != nil {
			t.Fatalf("backend %d dead after drain: %v", i, err)
		}
		if err := cc.Ping(); err != nil {
			t.Fatalf("backend %d ping: %v", i, err)
		}
		cc.Close()
	}
	if r, err := v.Read(0); err != nil || r.Status != server.StatusOK {
		t.Fatalf("volume unusable after proxy drain: %v %v", err, r.Status)
	}
}
