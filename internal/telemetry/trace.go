package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Trace is the collecting Tracer: it buffers events in memory and exports
// them as Chrome trace-event JSON. Safe for concurrent use.
//
// The export is deterministic: events are sorted by a total key
// (Ts, Track, Seq, Slot, Name, Dur, Ph), numbers are rendered with
// shortest-roundtrip formatting, and object keys are written in a fixed
// order, so two runs that admit the same requests in the same ticket order
// produce byte-identical files no matter how many goroutines submitted.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return &Trace{} }

// Emit implements Tracer.
func (t *Trace) Emit(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of collected events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a sorted copy of the collected events (export order).
func (t *Trace) Events() []Event {
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sortEvents(evs)
	return evs
}

// sortEvents orders events by the total export key.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		if a.Ph != b.Ph {
			return a.Ph < b.Ph
		}
		return a.TraceID < b.TraceID
	})
}

// WriteChrome writes the trace in Chrome trace-event JSON array format
// (the "JSON Array Format" accepted by Perfetto and chrome://tracing):
// thread-name metadata first, then every event as a complete ("X") or
// instant ("i") record with ts/dur in microseconds of the simulated clock
// and args carrying the ticket, slot, LPN and GC attribution.
func (t *Trace) WriteChrome(w io.Writer) error {
	evs := t.Events()
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	bw.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"superfast device pipeline"}}`)

	// One thread-name record per track present, in track order.
	tracks := map[int]bool{}
	for _, ev := range evs {
		tracks[ev.Track] = true
	}
	ids := make([]int, 0, len(tracks))
	for id := range tracks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		bw.WriteString(",\n")
		bw.WriteString(`{"name":"thread_name","ph":"M","pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(id))
		bw.WriteString(`,"args":{"name":`)
		bw.WriteString(strconv.Quote(TrackName(id)))
		bw.WriteString(`}}`)
	}

	for _, ev := range evs {
		bw.WriteString(",\n")
		bw.WriteString(`{"name":`)
		bw.WriteString(strconv.Quote(ev.Name))
		bw.WriteString(`,"cat":`)
		bw.WriteString(strconv.Quote(ev.Cat))
		bw.WriteString(`,"ph":"`)
		bw.WriteByte(ev.Ph)
		bw.WriteString(`"`)
		if ev.Ph == PhaseInstant {
			bw.WriteString(`,"s":"t"`)
		}
		bw.WriteString(`,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(ev.Track))
		bw.WriteString(`,"ts":`)
		bw.WriteString(formatUS(ev.Ts))
		if ev.Ph == PhaseSpan {
			bw.WriteString(`,"dur":`)
			bw.WriteString(formatUS(ev.Dur))
		}
		bw.WriteString(`,"args":{"ticket":`)
		bw.WriteString(strconv.FormatUint(ev.Seq, 10))
		bw.WriteString(`,"slot":`)
		bw.WriteString(strconv.Itoa(ev.Slot))
		if ev.LPN >= 0 {
			bw.WriteString(`,"lpn":`)
			bw.WriteString(strconv.FormatInt(ev.LPN, 10))
		}
		if ev.GC {
			bw.WriteString(`,"gc":1`)
		}
		if ev.TraceID != 0 {
			bw.WriteString(`,"trace":`)
			bw.WriteString(strconv.FormatUint(ev.TraceID, 10))
		}
		bw.WriteString(`}}`)
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// formatUS renders a simulated-µs value with the shortest representation
// that round-trips, in fixed-point notation (trace viewers dislike
// exponents in ts fields).
func formatUS(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
