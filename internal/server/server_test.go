package server

import (
	"context"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"superfast/internal/flash"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/telemetry"
	"superfast/internal/workload"
)

// testDevice builds a small concurrent device; identical calls build
// bit-identical devices, which the loopback equivalence test relies on.
func testDevice(t testing.TB) *ssd.ConcurrentDevice {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.25
	d, err := ssd.NewConcurrent(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// startServer serves cfg over a loopback listener and returns the server and
// its address. The server is shut down at test cleanup.
func startServer(t testing.TB, dev *ssd.ConcurrentDevice, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(dev, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// rawConn is a minimal test client over one socket: synchronous calls, and a
// pipelined form for the drain test.
type rawConn struct {
	t  testing.TB
	nc net.Conn
}

func dialRaw(t testing.TB, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (c *rawConn) send(f Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = c.nc.Write(buf)
	return err
}

func (c *rawConn) recv() (Response, error) {
	r, _, err := ReadResponse(c.nc)
	return r, err
}

func (c *rawConn) call(f Frame) Response {
	c.t.Helper()
	if err := c.send(f); err != nil {
		c.t.Fatalf("send %v: %v", f.Op, err)
	}
	r, err := c.recv()
	if err != nil {
		c.t.Fatalf("recv for %v: %v", f.Op, err)
	}
	if r.ID != f.ID {
		c.t.Fatalf("response id %d for request id %d", r.ID, f.ID)
	}
	return r
}

func TestServerBasicOps(t *testing.T) {
	dev := testDevice(t)
	srv, addr := startServer(t, dev, Config{})
	c := dialRaw(t, addr)

	if r := c.call(Frame{Op: OpPing, ID: 1}); r.Status != StatusOK {
		t.Fatalf("ping: %v", r.Status)
	}
	payload := []byte("page five contents")
	if r := c.call(Frame{Op: OpWrite, ID: 2, LPN: 5, Payload: payload}); r.Status != StatusOK || r.Latency <= 0 {
		t.Fatalf("write: %+v", r)
	}
	r := c.call(Frame{Op: OpRead, ID: 3, LPN: 5})
	if r.Status != StatusOK || r.Latency <= 0 {
		t.Fatalf("read: %+v", r)
	}
	if !strings.HasPrefix(string(r.Payload), string(payload)) {
		t.Fatalf("read data %q, want prefix %q", r.Payload, payload)
	}
	if r := c.call(Frame{Op: OpFlush, ID: 4}); r.Status != StatusOK {
		t.Fatalf("flush: %v", r.Status)
	}
	if r := c.call(Frame{Op: OpTrim, ID: 5, LPN: 5}); r.Status != StatusOK {
		t.Fatalf("trim: %+v", r)
	}
	// Reading the trimmed page maps ftl.ErrUnmapped onto BAD_REQUEST.
	if r := c.call(Frame{Op: OpRead, ID: 6, LPN: 5}); r.Status != StatusBadRequest {
		t.Fatalf("read after trim: %v", r.Status)
	}
	// Out-of-range LPN is also the client's fault.
	if r := c.call(Frame{Op: OpRead, ID: 7, LPN: 1 << 40}); r.Status != StatusBadRequest {
		t.Fatalf("out of range read: %v", r.Status)
	}

	st := srv.Stats()
	if st.Conns != 1 || st.ConnsEver != 1 {
		t.Fatalf("conns %d/%d, want 1/1", st.Conns, st.ConnsEver)
	}
	if st.Accepted != 7 || st.Responses != 7 {
		t.Fatalf("accepted %d responses %d, want 7/7", st.Accepted, st.Responses)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters not wired: %+v", st)
	}
}

func TestServerStat(t *testing.T) {
	dev := testDevice(t)
	_, addr := startServer(t, dev, Config{})
	c := dialRaw(t, addr)
	c.call(Frame{Op: OpWrite, ID: 1, LPN: 0, Payload: []byte("x")})

	r := c.call(Frame{Op: OpStat, ID: 2})
	if r.Status != StatusOK {
		t.Fatalf("stat: %v", r.Status)
	}
	body := string(r.Payload)
	for _, key := range []string{"capacity_lpns", "page_size", "device", "ftl", "waf", "chips", "server"} {
		if !strings.Contains(body, `"`+key+`"`) {
			t.Fatalf("stat payload missing %q: %s", key, body)
		}
	}
}

func TestServerSequencedFlagMismatch(t *testing.T) {
	dev := testDevice(t)
	_, addr := startServer(t, dev, Config{}) // not sequenced
	c := dialRaw(t, addr)
	r := c.call(Frame{Op: OpWrite, ID: 1, LPN: 0, Payload: []byte("x"), Flags: FlagSequenced})
	if r.Status != StatusBadRequest {
		t.Fatalf("sequenced frame on plain server: %v", r.Status)
	}

	dev2 := testDevice(t)
	_, addr2 := startServer(t, dev2, Config{Sequenced: true})
	c2 := dialRaw(t, addr2)
	r = c2.call(Frame{Op: OpWrite, ID: 1, LPN: 0, Payload: []byte("x")})
	if r.Status != StatusBadRequest {
		t.Fatalf("plain frame on sequenced server: %v", r.Status)
	}
}

func TestServerPace(t *testing.T) {
	dev := testDevice(t)
	srv, addr := startServer(t, dev, Config{Pace: 2}) // 2 wall-µs per simulated µs
	c := dialRaw(t, addr)
	start := time.Now()
	// A single buffered write completes in sub-µs simulated time (no flash
	// program, just a buffer fill) — drive enough sequential writes to flush
	// super-word-line buffers and accrue real program latency to pace against.
	var totalLat float64
	for i := 0; i < 48; i++ {
		r := c.call(Frame{Op: OpWrite, ID: uint64(i + 1), LPN: int64(i), Payload: []byte("paced page")})
		if r.Status != StatusOK {
			t.Fatalf("write %d: %v", i, r.Status)
		}
		totalLat += r.Latency
	}
	slept := srv.pacedSlept.Load()
	if slept == 0 {
		t.Fatalf("no paced sleep recorded over %.1f µs of simulated latency", totalLat)
	}
	// Calls were synchronous on one connection, so the wall clock must cover
	// every recorded sleep.
	if wall := time.Since(start); wall < time.Duration(slept)*time.Microsecond {
		t.Fatalf("wall %v < paced %d µs", wall, slept)
	}
}

func TestServerMetricsWired(t *testing.T) {
	dev := testDevice(t)
	reg := telemetry.New()
	srv, addr := startServer(t, dev, Config{Metrics: reg})
	c := dialRaw(t, addr)
	c.call(Frame{Op: OpWrite, ID: 1, LPN: 1, Payload: []byte("x")})
	c.call(Frame{Op: OpPing, ID: 2})

	if got := reg.Counter("srv.accepted").Value(); got != 2 {
		t.Fatalf("srv.accepted = %d, want 2", got)
	}
	if got := reg.Counter("srv.responses").Value(); got != 2 {
		t.Fatalf("srv.responses = %d, want 2", got)
	}
	if reg.Counter("srv.bytes_in").Value() == 0 || reg.Counter("srv.bytes_out").Value() == 0 {
		t.Fatal("byte counters not mirrored")
	}
	if got := reg.Gauge("srv.conns").Value(); got != 1 {
		t.Fatalf("srv.conns = %v, want 1", got)
	}
	if got := reg.Counter("srv.conns_total").Value(); got != 1 {
		t.Fatalf("srv.conns_total = %d, want 1", got)
	}

	cols := RecorderColumns()
	vals := make([]float64, len(cols))
	srv.RecorderSampler()(vals)
	if vals[0] != 1 { // srv_conns
		t.Fatalf("sampled conns = %v, want 1", vals[0])
	}
	if vals[2] != 2 { // srv_accepted
		t.Fatalf("sampled accepted = %v, want 2", vals[2])
	}
}

func TestServerDeadline(t *testing.T) {
	dev := testDevice(t)
	// Sequenced mode makes the deadline deterministic: ticket 1 cannot be
	// admitted while ticket 0 is missing, so its wait expires.
	srv, addr := startServer(t, dev, Config{Sequenced: true, Deadline: 25 * time.Millisecond})
	c := dialRaw(t, addr)
	r := c.call(Frame{Op: OpWrite, ID: 1, LPN: 5, Payload: []byte("late"), Flags: FlagSequenced, Seq: 1})
	if r.Status != StatusDeadline {
		t.Fatalf("orphaned ticket: %v, want DEADLINE", r.Status)
	}
	// The chain must survive the rejection: ticket 0 still runs, and the
	// retired ticket 1 is skipped so ticket 2 runs too.
	if r := c.call(Frame{Op: OpWrite, ID: 2, LPN: 0, Payload: []byte("a"), Flags: FlagSequenced, Seq: 0}); r.Status != StatusOK {
		t.Fatalf("ticket 0: %v", r.Status)
	}
	if r := c.call(Frame{Op: OpWrite, ID: 3, LPN: 1, Payload: []byte("b"), Flags: FlagSequenced, Seq: 2}); r.Status != StatusOK {
		t.Fatalf("ticket 2 after retired ticket 1: %v", r.Status)
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

func TestServeAfterShutdownFails(t *testing.T) {
	dev := testDevice(t)
	srv := New(dev, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Shutdown should fail")
	}
}

// TestLoopbackTraceReplayMatchesDirect is the acceptance check: a sequenced
// multi-connection replay through the TCP server produces, request for
// request, the exact simulated latencies and device statistics of a direct
// workload.RunConcurrent replay on an identical device.
func TestLoopbackTraceReplayMatchesDirect(t *testing.T) {
	devDirect := testDevice(t)
	space := devDirect.FTL().Capacity()
	gen := func() workload.Generator {
		return &workload.Paced{
			Gen:       &workload.Mixed{Space: space, Count: 400, ReadFrac: 0.4, PageLen: 24, Seed: 11},
			MeanGapUS: 40,
			Seed:      12,
		}
	}
	reqs := workload.Collect(gen())
	direct, err := workload.RunConcurrent(devDirect, workload.Collect(gen()), 4)
	if err != nil {
		t.Fatal(err)
	}

	devServed := testDevice(t)
	srv, addr := startServer(t, devServed, Config{Sequenced: true, MaxInFlight: 32, MaxPerConn: 16})

	const conns = 3
	lat := make([]float64, len(reqs))
	status := make([]Status, len(reqs))
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			// Writer side: stream this connection's share, stamped with the
			// global index as the replay ticket.
			idsToIndex := make(map[uint64]int)
			var mine []int
			for i := ci; i < len(reqs); i += conns {
				mine = append(mine, i)
			}
			go func() {
				var buf []byte
				for _, i := range mine {
					f := Frame{ID: uint64(i + 1), LPN: reqs[i].LPN, Arrival: reqs[i].Arrival,
						Flags: FlagSequenced, Seq: uint64(i)}
					switch reqs[i].Kind {
					case ssd.OpRead:
						f.Op = OpRead
					case ssd.OpWrite:
						f.Op = OpWrite
						f.Payload = reqs[i].Data
						f.Hint = reqs[i].Hint
					case ssd.OpTrim:
						f.Op = OpTrim
					}
					buf, err = AppendFrame(buf[:0], f)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := nc.Write(buf); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for _, i := range mine {
				idsToIndex[uint64(i+1)] = i
			}
			for range mine {
				r, _, err := ReadResponse(nc)
				if err != nil {
					t.Error(err)
					return
				}
				i, ok := idsToIndex[r.ID]
				if !ok {
					t.Errorf("unknown response id %d", r.ID)
					return
				}
				lat[i] = r.Latency
				status[i] = r.Status
			}
		}(ci)
	}
	wg.Wait()

	for i := range reqs {
		if status[i] != StatusOK {
			t.Fatalf("request %d: status %v", i, status[i])
		}
		if lat[i] != direct[i].Latency {
			t.Fatalf("request %d: served latency %v, direct %v", i, lat[i], direct[i].Latency)
		}
	}

	ds, ss := devDirect.Stats(), devServed.Stats()
	ds.Latencies, ss.Latencies = nil, nil
	if !reflect.DeepEqual(ds, ss) {
		t.Fatalf("device stats diverge:\ndirect %+v\nserved %+v", ds, ss)
	}
	if a, b := devDirect.FTL().Stats(), devServed.FTL().Stats(); !reflect.DeepEqual(a, b) {
		t.Fatalf("ftl stats diverge:\ndirect %+v\nserved %+v", a, b)
	}
	if st := srv.Stats(); st.Rejected != 0 {
		t.Fatalf("replay rejected %d requests", st.Rejected)
	}
}

// TestDrainUnderLoad is the second acceptance check: shutting down mid-burst
// answers every frame the server accepted — nothing in flight is dropped, and
// every response reaches the client before the connection closes.
func TestDrainUnderLoad(t *testing.T) {
	dev := testDevice(t)
	srv := New(dev, Config{MaxInFlight: 8, MaxPerConn: 4, Pace: 0.3})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	const conns = 3
	var clientGot atomic.Uint64
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer nc.Close()
			writeDone := make(chan struct{})
			go func() {
				defer close(writeDone)
				var buf []byte
				for i := uint64(1); ; i++ {
					lpn := int64((i*uint64(conns) + uint64(ci)) % 64)
					buf, _ = AppendFrame(buf[:0], Frame{Op: OpWrite, ID: i, LPN: lpn, Payload: []byte("drain-load")})
					if _, err := nc.Write(buf); err != nil {
						return // server closed its side
					}
				}
			}()
			for {
				if _, _, err := ReadResponse(nc); err != nil {
					break
				}
				clientGot.Add(1)
			}
			<-writeDone
		}(ci)
	}

	// Let the burst get going, then pull the plug.
	for srv.Stats().Responses < 20 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	st := srv.Stats()
	if st.Accepted == 0 {
		t.Fatal("no load reached the server")
	}
	if st.Responses != st.Accepted {
		t.Fatalf("dropped in-flight requests: accepted %d, responded %d", st.Accepted, st.Responses)
	}
	if got := clientGot.Load(); got != st.Accepted {
		t.Fatalf("clients received %d responses, server accepted %d", got, st.Accepted)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight after drain: %d", st.InFlight)
	}
}
