package assembly

import (
	"math"
	"testing"
	"testing/quick"

	"superfast/internal/profile"
)

func TestHungarianSmallKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match := hungarian(cost)
	total := 0.0
	for i, j := range match {
		total += cost[i][j]
	}
	// Optimal assignment: (0→1)=1, (1→0)=2, (2→2)=2 → 5.
	if total != 5 {
		t.Fatalf("assignment cost %v, want 5 (match %v)", total, match)
	}
}

func TestHungarianIsPermutationAndOptimalBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		// Random 5×5 matrices, verified against brute force.
		n := 5
		cost := make([][]float64, n)
		x := uint64(seed)
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return float64(x>>40) / 1000
		}
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = next()
			}
		}
		match := hungarian(cost)
		seen := make([]bool, n)
		total := 0.0
		for i, j := range match {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
			total += cost[i][j]
		}
		// Brute force over all 120 permutations.
		best := math.Inf(1)
		perm := []int{0, 1, 2, 3, 4}
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				s := 0.0
				for i, j := range perm {
					s += cost[i][j]
				}
				if s < best {
					best = s
				}
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		return math.Abs(total-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalBeatsOrTiesWindowedOptimal(t *testing.T) {
	lanes := modelLanes(t, 2, 48, 123)
	glob, err := Global{}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPartition(lanes, glob.Superblocks); err != nil {
		t.Fatal(err)
	}
	win, err := Optimal{Window: 8}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	total := func(sbs [][]int) float64 {
		s := 0.0
		for _, sb := range sbs {
			s += pairLatency(lanes[0].Blocks[sb[0]], lanes[1].Blocks[sb[1]])
		}
		return s
	}
	if tg, tw := total(glob.Superblocks), total(win.Superblocks); tg > tw+1e-6 {
		t.Fatalf("global total %v exceeds windowed %v", tg, tw)
	}
}

func TestGlobalRejectsWrongLaneCount(t *testing.T) {
	lanes := modelLanes(t, 3, 8, 3)
	if _, err := (Global{}).Assemble(lanes); err == nil {
		t.Fatal("3 lanes should be rejected")
	}
	if _, err := (Global{}).Assemble(nil); err == nil {
		t.Fatal("nil lanes should be rejected")
	}
}

func TestPairLatency(t *testing.T) {
	a := profile.NewBlockProfile(0, 0, 1, 2, []float64{10, 30}, 0, 0)
	b := profile.NewBlockProfile(1, 0, 1, 2, []float64{20, 25}, 0, 0)
	if got := pairLatency(a, b); got != 20+30 {
		t.Fatalf("pairLatency = %v, want 50", got)
	}
}
