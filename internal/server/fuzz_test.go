package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"superfast/internal/telemetry"
)

// FuzzDecodeFrame feeds arbitrary bytes to the request-frame decoder: it must
// never panic, never allocate beyond the validated payload bound, reject
// truncated and oversized lengths with the right error class, and round-trip
// whatever it accepts.
func FuzzDecodeFrame(f *testing.F) {
	valid, _ := AppendFrame(nil, Frame{Op: OpWrite, ID: 7, LPN: 42, Payload: []byte("seed page")})
	f.Add(valid)
	f.Add(valid[:3])                            // truncated length prefix
	f.Add(valid[:len(valid)-2])                 // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 1}) // hostile oversized length
	f.Add([]byte{0, 0, 0, 36, 1, 99, 0, 0})     // bad opcode
	short, _ := AppendFrame(nil, Frame{Op: OpPing, ID: 1})
	f.Add(short)
	seq, _ := AppendFrame(nil, Frame{Op: OpRead, ID: 2, LPN: 3, Flags: FlagSequenced, Seq: 9, Arrival: 1.5})
	f.Add(seq)

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			// A hostile length prefix must be classified before any payload
			// allocation could happen.
			if len(b) >= 4 {
				if l := int(binary.BigEndian.Uint32(b)); l > reqHeaderLen+MaxPayload && !errors.Is(err, ErrFrameSize) {
					t.Fatalf("oversized length %d not ErrFrameSize: %v", l, err)
				}
			}
			return
		}
		if n < 4+reqHeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if fr.Op < OpRead || fr.Op > OpFault {
			t.Fatalf("accepted invalid opcode %d", fr.Op)
		}
		if len(fr.Payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes", len(fr.Payload))
		}
		if len(fr.Payload) > 0 && fr.Op != OpWrite && fr.Op != OpFault {
			t.Fatalf("accepted %v with payload", fr.Op)
		}
		// Accepted frames re-encode to the exact bytes consumed.
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", b[:n], re)
		}
	})
}

// FuzzDecodeTraceExt hammers the trace-extension decode path specifically:
// frames with FlagTrace set must validate the extension (parent hop, reserved
// bytes), frames without it must never grow trace context, and — exactly as
// in FuzzDecodeFrame — whatever the decoder accepts must re-encode to the
// bytes consumed. The seeds cover a traced write, a traced frame whose
// extension is truncated, hostile reserved bytes, and an invalid parent hop.
func FuzzDecodeTraceExt(f *testing.F) {
	traced, _ := AppendFrame(nil, Frame{
		Op: OpWrite, ID: 11, LPN: 9, Flags: FlagTrace | FlagSequenced, Seq: 4,
		Trace: 77, ParentHop: telemetry.HopProxy, Leg: 1, Payload: []byte("traced page"),
	})
	f.Add(traced)
	root, _ := AppendFrame(nil, Frame{
		Op: OpRead, ID: 12, LPN: 3, Flags: FlagTrace,
		Trace: 1, ParentHop: telemetry.HopNone,
	})
	f.Add(root)
	f.Add(traced[:len(traced)-len("traced page")-3]) // extension cut short
	// Flip a reserved extension byte: must be rejected, never silently eaten.
	dirty := append([]byte(nil), root...)
	dirty[4+reqHeaderLen+10] = 0xaa
	f.Add(dirty)
	// Parent hop outside the taxonomy (and not HopNone).
	badHop := append([]byte(nil), root...)
	badHop[4+reqHeaderLen+8] = 0x20
	f.Add(badHop)
	// Trace flag set but the length claims a bare v1 header.
	short := append([]byte(nil), root[:4+reqHeaderLen]...)
	binary.BigEndian.PutUint32(short, reqHeaderLen)
	f.Add(short)

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			return
		}
		if fr.Traced() {
			if !fr.ParentHop.Valid() && fr.ParentHop != telemetry.HopNone {
				t.Fatalf("accepted parent hop %d", fr.ParentHop)
			}
			if n < 4+reqHeaderLen+traceExtLen {
				t.Fatalf("traced frame consumed only %d bytes", n)
			}
		} else if fr.Trace != 0 || fr.ParentHop != 0 || fr.Leg != 0 {
			t.Fatalf("untraced frame grew trace context: %+v", fr)
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", b[:n], re)
		}
	})
}

// FuzzDecodeTenantExt hammers the tenant-extension decode path: frames with
// FlagTenant must carry a valid extension (nonzero tenant id, zero reserved
// bytes) after any trace extension, frames without it must never grow a
// tenant id, and accepted frames re-encode to the bytes consumed. The seeds
// cover a tenanted write, a tenanted+traced read (both extensions), a zero
// tenant id, dirty reserved bytes, a truncated extension, and a FAULT frame.
func FuzzDecodeTenantExt(f *testing.F) {
	tenanted, _ := AppendFrame(nil, Frame{
		Op: OpWrite, ID: 21, LPN: 5, Flags: FlagTenant, Tenant: 2, Payload: []byte("ns page"),
	})
	f.Add(tenanted)
	both, _ := AppendFrame(nil, Frame{
		Op: OpRead, ID: 22, LPN: 9, Flags: FlagTrace | FlagTenant,
		Trace: 31, ParentHop: telemetry.HopNone, Tenant: 1,
	})
	f.Add(both)
	// Tenant id zero: reserved as "untenanted", must be rejected on the wire.
	zero := append([]byte(nil), both...)
	zero[4+reqHeaderLen+traceExtLen] = 0
	zero[4+reqHeaderLen+traceExtLen+1] = 0
	f.Add(zero)
	// Dirty reserved bytes must be rejected, never silently eaten.
	dirty := append([]byte(nil), both...)
	dirty[4+reqHeaderLen+traceExtLen+5] = 0x5a
	f.Add(dirty)
	f.Add(tenanted[:4+reqHeaderLen+3]) // extension cut short
	fault, _ := AppendFrame(nil, Frame{Op: OpFault, ID: 23, Payload: []byte(`{"kind":"chip-dropout","chip":1}`)})
	f.Add(fault)

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			return
		}
		if fr.Tenanted() {
			if fr.Tenant == 0 {
				t.Fatal("accepted tenant extension with id 0")
			}
			if n < 4+reqHeaderLen+tenantExtLen {
				t.Fatalf("tenanted frame consumed only %d bytes", n)
			}
		} else if fr.Tenant != 0 {
			t.Fatalf("untenanted frame grew a tenant id: %+v", fr)
		}
		re, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", b[:n], re)
		}
	})
}

// FuzzDecodeResponse gives the response decoder the same treatment.
func FuzzDecodeResponse(f *testing.F) {
	ok, _ := AppendResponse(nil, Response{Status: StatusOK, ID: 1, Latency: 12.5, Payload: []byte("data")})
	f.Add(ok)
	rej, _ := AppendResponse(nil, Response{Status: StatusRejected, ID: 2})
	f.Add(rej)
	f.Add(ok[:2])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		r, n, err := DecodeResponse(b)
		if err != nil {
			return
		}
		if n < 4+respHeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if r.Status > StatusInternal {
			t.Fatalf("accepted invalid status %d", r.Status)
		}
		re, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", b[:n], re)
		}
	})
}
