// Command characterize dumps raw latency characterization data from the
// simulated flash chips in CSV form — the data behind the paper's Fig. 5:
// per-block erase latency and per-word-line program latency.
//
// Usage:
//
//	characterize -kind erase -chips 2 -blocks 200 > erase.csv
//	characterize -kind program -chips 2 -blocks 4 -pe 1000 > program.csv
//	characterize -kind eigen -blocks 4
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"superfast/internal/chamber"
	"superfast/internal/flash"
	"superfast/internal/profile"
	"superfast/internal/pv"
)

func main() {
	var (
		kind   = flag.String("kind", "erase", "what to dump: erase | program | eigen")
		chips  = flag.Int("chips", 2, "chips to characterize")
		blocks = flag.Int("blocks", 200, "blocks per chip")
		pe     = flag.Int("pe", 0, "P/E cycle count at measurement")
		seed   = flag.Uint64("seed", 0, "model seed override (0 = default)")
	)
	flag.Parse()

	g := flash.PaperGeometry()
	if *chips > g.Chips {
		fatalf("at most %d chips", g.Chips)
	}
	if *blocks > g.BlocksPerPlane {
		fatalf("at most %d blocks", g.BlocksPerPlane)
	}
	p := pv.DefaultParams()
	if *seed != 0 {
		p.Seed = *seed
	}
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		fatalf("%v", err)
	}
	tb := chamber.New(arr)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "erase":
		fmt.Fprintln(w, "chip,block,tBERS_us")
		for c := 0; c < *chips; c++ {
			lane := c * g.PlanesPerChip
			for b := 0; b < *blocks; b++ {
				prof := tb.FastProfile(lane, b, *pe)
				fmt.Fprintf(w, "%d,%d,%.1f\n", c, b, prof.Erase)
			}
		}
	case "program":
		fmt.Fprintln(w, "chip,block,wl,tPROG_us")
		for c := 0; c < *chips; c++ {
			lane := c * g.PlanesPerChip
			for b := 0; b < *blocks; b++ {
				prof := tb.FastProfile(lane, b, *pe)
				for wl, v := range prof.LWL {
					fmt.Fprintf(w, "%d,%d,%d,%.1f\n", c, b, wl, v)
				}
			}
		}
	case "eigen":
		fmt.Fprintln(w, "chip,block,pgm_sum_us,eigen")
		for c := 0; c < *chips; c++ {
			lane := c * g.PlanesPerChip
			for b := 0; b < *blocks; b++ {
				prof := tb.FastProfile(lane, b, *pe)
				e := profile.EigenFromProfile(prof)
				fmt.Fprintf(w, "%d,%d,%.1f,%s\n", c, b, prof.PgmSum, e)
			}
		}
	default:
		fatalf("unknown -kind %q (erase | program | eigen)", *kind)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "characterize: "+format+"\n", args...)
	os.Exit(1)
}
