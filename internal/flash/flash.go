// Package flash simulates a 3D TLC NAND flash array: chips, planes, blocks,
// word-lines and pages, with erase/program/read operations whose latencies
// come from the process-variation model in internal/pv, NAND state-machine
// rules (erase-before-program, sequential word-line programming), a bit-error
// + ECC retry model, and multi-plane commands whose completion time is the
// maximum over their members — the mechanism that creates the paper's "extra
// latency".
package flash

import (
	"errors"
	"fmt"
	"math"

	"superfast/internal/prng"
	"superfast/internal/pv"
)

// PagesPerLWL is the number of pages per logical word-line (TLC).
const PagesPerLWL = int(pv.NumPageTypes)

// Errors returned by array operations.
var (
	ErrBadAddress     = errors.New("flash: address out of range")
	ErrNotErased      = errors.New("flash: block not erased")
	ErrOutOfOrder     = errors.New("flash: word-lines must be programmed in order")
	ErrNotProgrammed  = errors.New("flash: page not programmed")
	ErrUncorrectable  = errors.New("flash: uncorrectable ECC error")
	ErrLaneConflict   = errors.New("flash: multi-plane command targets share a lane")
	ErrEmptyMultiOp   = errors.New("flash: multi-plane command needs at least one target")
	ErrAlreadyWritten = errors.New("flash: word-line already programmed")
	ErrBadBlock       = errors.New("flash: block is bad (endurance exhausted)")
)

// BlockAddr identifies one physical block.
type BlockAddr struct {
	Chip  int
	Plane int
	Block int
}

func (a BlockAddr) String() string {
	return fmt.Sprintf("c%d/p%d/b%d", a.Chip, a.Plane, a.Block)
}

// Lane returns the plane-lane index of the block inside geometry g.
func (a BlockAddr) Lane(g Geometry) int { return a.Chip*g.PlanesPerChip + a.Plane }

// PageAddr identifies one TLC page.
type PageAddr struct {
	BlockAddr
	LWL  int // logical word-line index
	Type pv.PageType
}

// PageIndex returns the flat page index of the address within its block.
func (a PageAddr) PageIndex() int { return a.LWL*PagesPerLWL + int(a.Type) }

// ECCConfig models the on-controller error correction engine.
type ECCConfig struct {
	CorrectableBits int     // bits the hard decode corrects per page
	RetryBits       int     // bits the retry (soft) decode corrects per page
	RetryPenalty    float64 // extra read latency per retry round, µs
	MaxRetries      int
}

// DefaultECC returns an LDPC-like configuration: strong hard decode, a few
// increasingly expensive retry rounds.
func DefaultECC() ECCConfig {
	return ECCConfig{CorrectableBits: 72, RetryBits: 120, RetryPenalty: 55, MaxRetries: 3}
}

// Counters aggregates operation statistics for an array.
type Counters struct {
	Erases      uint64
	EraseFails  uint64 // erases rejected on bad blocks
	Programs    uint64 // word-line programs
	Reads       uint64
	ReadRetries uint64
	ReadFails   uint64
	EraseTime   float64 // µs
	ProgramTime float64
	ReadTime    float64
}

// bitset is a fixed-capacity bit vector over page indices. The nil bitset
// reads as all-false, so blocks that were never programmed need no storage.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) get(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]&(1<<uint(i&63)) != 0
}

func (s bitset) set(i int) { s[i>>6] |= 1 << uint(i&63) }

func (s bitset) clearAll() {
	for i := range s {
		s[i] = 0
	}
}

type block struct {
	bad        bool
	corrupted  bitset   // page index → forced uncorrectable (fault injection); nil until injected
	oob        [][]byte // page index → spare-area bytes; nil until first OOB write
	peCycles   int
	nextLWL    int       // next word-line to program; LWLsPerBlock when full
	retention  float64   // retention units since last program completion
	data       [][]byte  // page index → payload; nil until first program
	programmed bitset    // page index → written; allocated with data
	lwlLatency []float64 // observed program latency per LWL (last program pass)
}

// Array is a simulated NAND flash array. It is not safe for concurrent use;
// callers (the SSD layer) serialize access per their channel model.
type Array struct {
	geo      Geometry
	model    *pv.Model
	kern     *pv.Kernel // cached-latency kernel over this array's geometry
	seed     uint64     // model seed, cached off the hot read path
	ecc      ECCConfig
	borrow   bool                        // store program payloads without copying (SetBorrowPayloads)
	recycler func(buf []byte, oob bool) // erase-time buffer hand-back (SetRecycler)

	blocks   []block // lane-major: lane*BlocksPerPlane + block
	opNonce  uint64  // distinguishes repeated measurements (temporal jitter)
	counters Counters

	// Chip-level fault injection (FailNextReads / SetChipReadFailure).
	// Nil until the first injection so the hot read path pays one nil check.
	failReads []int  // chip → remaining forced-uncorrectable reads
	chipDown  []bool // chip → all reads fail uncorrectable until revived
}

// NewArray builds an array over the given geometry and variation model.
func NewArray(g Geometry, m *pv.Model, ecc ECCConfig) (*Array, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	mp := m.Params()
	if mp.Layers != g.Layers || mp.Strings != g.Strings {
		return nil, fmt.Errorf("flash: pv model geometry (%d layers × %d strings) disagrees with array (%d × %d)",
			mp.Layers, mp.Strings, g.Layers, g.Strings)
	}
	return &Array{
		geo:    g,
		model:  m,
		kern:   m.Kernel(g.Chips, g.PlanesPerChip, g.BlocksPerPlane),
		seed:   mp.Seed,
		ecc:    ecc,
		blocks: make([]block, g.TotalBlocks()),
	}, nil
}

// MustNewArray is NewArray that panics on error, for tests and examples.
func MustNewArray(g Geometry, m *pv.Model, ecc ECCConfig) *Array {
	a, err := NewArray(g, m, ecc)
	if err != nil {
		panic(err)
	}
	return a
}

// Geometry returns the array geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Model returns the underlying process-variation model.
func (a *Array) Model() *pv.Model { return a.model }

// Kernel returns the cached-latency kernel the array evaluates its model
// through. Consumers that query the model at array coordinates (the chamber
// testbed, the experiment sweeps) should go through it so they share the
// array's precomputed tables.
func (a *Array) Kernel() *pv.Kernel { return a.kern }

// SetBorrowPayloads selects whether program operations copy page and OOB
// payloads into the array (the default) or store the caller's slices
// directly. Borrowing is safe only when the caller hands over ownership:
// every buffer passed to Program/ProgramOOB must not be mutated afterwards.
// The FTL qualifies (it builds fresh buffers per flush and drops them), and
// enables this for its array; measurement harnesses that reuse payload
// scratch buffers must leave it off.
func (a *Array) SetBorrowPayloads(on bool) { a.borrow = on }

// SetRecycler installs a callback that Erase invokes for every payload and
// OOB buffer the erased block still holds, just before the block forgets
// them. With borrowing on, the buffers handed back are exactly the slices
// the owner lent to Program/ProgramOOB, so an FTL can pool and reuse them
// instead of allocating fresh ones every P/E cycle. The callback runs on
// the erase path and must not call back into the array. Pass nil to remove.
func (a *Array) SetRecycler(fn func(buf []byte, oob bool)) { a.recycler = fn }

// Counters returns a copy of the operation counters.
func (a *Array) Counters() Counters { return a.counters }

func (a *Array) blockIndex(addr BlockAddr) (int, error) {
	if addr.Chip < 0 || addr.Chip >= a.geo.Chips ||
		addr.Plane < 0 || addr.Plane >= a.geo.PlanesPerChip ||
		addr.Block < 0 || addr.Block >= a.geo.BlocksPerPlane {
		return 0, fmt.Errorf("%w: %v", ErrBadAddress, addr)
	}
	return addr.Lane(a.geo)*a.geo.BlocksPerPlane + addr.Block, nil
}

func (a *Array) nonce() uint64 {
	a.opNonce++
	return a.opNonce
}

// PECycles returns the program/erase cycle count of a block.
func (a *Array) PECycles(addr BlockAddr) (int, error) {
	i, err := a.blockIndex(addr)
	if err != nil {
		return 0, err
	}
	return a.blocks[i].peCycles, nil
}

// SetPECycles force-sets the wear state of a block. The chamber harness uses
// it to fast-forward cycling without replaying every intermediate erase.
func (a *Array) SetPECycles(addr BlockAddr, pe int) error {
	i, err := a.blockIndex(addr)
	if err != nil {
		return err
	}
	if pe < 0 {
		return fmt.Errorf("flash: negative P/E count %d", pe)
	}
	a.blocks[i].peCycles = pe
	return nil
}

// AddRetention ages every block by the given number of retention units
// (one high-temperature data-retention bake step = 1 unit).
func (a *Array) AddRetention(units float64) {
	if units < 0 {
		return
	}
	for i := range a.blocks {
		a.blocks[i].retention += units
	}
}

// NextLWL returns the next word-line to be programmed in the block
// (LWLsPerBlock when the block is full), or -1 for an invalid address.
func (a *Array) NextLWL(addr BlockAddr) int {
	i, err := a.blockIndex(addr)
	if err != nil {
		return -1
	}
	return a.blocks[i].nextLWL
}

// IsFull reports whether every word-line of the block has been programmed.
func (a *Array) IsFull(addr BlockAddr) bool {
	return a.NextLWL(addr) == a.geo.LWLsPerBlock()
}

// IsBad reports whether the block has been retired as bad.
func (a *Array) IsBad(addr BlockAddr) bool {
	i, err := a.blockIndex(addr)
	if err != nil {
		return false
	}
	return a.blocks[i].bad
}

// MarkBad retires a block manually (e.g. from a factory bad-block list).
func (a *Array) MarkBad(addr BlockAddr) error {
	i, err := a.blockIndex(addr)
	if err != nil {
		return err
	}
	a.blocks[i].bad = true
	return nil
}

// Erase erases one block and returns the observed erase latency in µs.
// When the block's endurance is exhausted the erase fails: the block is
// marked bad and ErrBadBlock is returned together with the time the failed
// erase still consumed.
func (a *Array) Erase(addr BlockAddr) (float64, error) {
	i, err := a.blockIndex(addr)
	if err != nil {
		return 0, err
	}
	b := &a.blocks[i]
	lat := a.kern.EraseLatency(addr.Chip, addr.Plane, addr.Block, b.peCycles, a.nonce())
	if b.bad || b.peCycles >= a.kern.Endurance(addr.Chip, addr.Plane, addr.Block) {
		b.bad = true
		a.counters.EraseFails++
		a.counters.EraseTime += lat
		return lat, fmt.Errorf("%w: %v", ErrBadBlock, addr)
	}
	b.peCycles++
	b.nextLWL = 0
	b.retention = 0
	// Clear page state in place rather than dropping it: a block cycles
	// through thousands of P/E cycles, and reallocating its page tables on
	// the first program of every cycle dominated the steady-state write path.
	if a.recycler != nil {
		for j := range b.data {
			if b.data[j] != nil {
				a.recycler(b.data[j], false)
			}
		}
		for j := range b.oob {
			if b.oob[j] != nil {
				a.recycler(b.oob[j], true)
			}
		}
	}
	for j := range b.data {
		b.data[j] = nil
	}
	for j := range b.oob {
		b.oob[j] = nil
	}
	b.programmed.clearAll()
	b.corrupted.clearAll()
	for j := range b.lwlLatency {
		b.lwlLatency[j] = 0
	}
	a.counters.Erases++
	a.counters.EraseTime += lat
	return lat, nil
}

// Program writes one logical word-line (all PagesPerLWL pages at once, as a
// one-shot TLC program) and returns the observed program latency in µs.
// pages may be nil or shorter than PagesPerLWL; missing entries are stored
// as empty payloads. Word-lines must be programmed in order after an erase.
func (a *Array) Program(addr BlockAddr, lwl int, pages [][]byte) (float64, error) {
	return a.ProgramOOB(addr, lwl, pages, nil)
}

// ProgramOOB is Program with per-page spare-area bytes (out-of-band data):
// oob[t] is stored alongside page t of the word-line. FTLs keep their
// logical tags there so the mapping can be rebuilt by scanning flash.
func (a *Array) ProgramOOB(addr BlockAddr, lwl int, pages [][]byte, oob [][]byte) (float64, error) {
	i, err := a.blockIndex(addr)
	if err != nil {
		return 0, err
	}
	if lwl < 0 || lwl >= a.geo.LWLsPerBlock() {
		return 0, fmt.Errorf("%w: lwl %d", ErrBadAddress, lwl)
	}
	if len(pages) > PagesPerLWL {
		return 0, fmt.Errorf("flash: %d pages for one word-line, max %d", len(pages), PagesPerLWL)
	}
	if len(oob) > PagesPerLWL {
		return 0, fmt.Errorf("flash: %d oob entries for one word-line, max %d", len(oob), PagesPerLWL)
	}
	for t, o := range oob {
		if len(o) > a.geo.SpareSize {
			return 0, fmt.Errorf("flash: oob %d is %d bytes, spare area holds %d", t, len(o), a.geo.SpareSize)
		}
	}
	b := &a.blocks[i]
	if b.bad {
		return 0, fmt.Errorf("%w: %v", ErrBadBlock, addr)
	}
	if lwl < b.nextLWL {
		return 0, fmt.Errorf("%w: lwl %d in %v", ErrAlreadyWritten, lwl, addr)
	}
	if lwl > b.nextLWL {
		return 0, fmt.Errorf("%w: want lwl %d, got %d in %v", ErrOutOfOrder, b.nextLWL, lwl, addr)
	}
	layer, str := a.geo.LayerString(lwl)
	lat := a.kern.ProgramLatency(pv.Coord{
		Chip: addr.Chip, Plane: addr.Plane, Block: addr.Block, Layer: layer, String: str,
	}, b.peCycles, a.nonce())
	if lwl == 0 {
		// Retention damage applies to stored charge: a block's data age
		// starts when the block begins to be programmed.
		b.retention = 0
	}
	if b.data == nil {
		// First program of this block's lifetime: allocate the page tables.
		// Erase clears them in place, so the allocation happens once, not
		// once per P/E cycle.
		np := a.geo.LWLsPerBlock() * PagesPerLWL
		b.data = make([][]byte, np)
		b.programmed = newBitset(np)
		b.lwlLatency = make([]float64, a.geo.LWLsPerBlock())
	}
	for t := 0; t < PagesPerLWL; t++ {
		idx := lwl*PagesPerLWL + t
		b.programmed.set(idx)
		if t < len(pages) && pages[t] != nil {
			if a.borrow {
				b.data[idx] = pages[t]
			} else {
				cp := make([]byte, len(pages[t]))
				copy(cp, pages[t])
				b.data[idx] = cp
			}
		}
		if t < len(oob) && oob[t] != nil {
			if b.oob == nil {
				b.oob = make([][]byte, a.geo.LWLsPerBlock()*PagesPerLWL)
			}
			if a.borrow {
				b.oob[idx] = oob[t]
			} else {
				b.oob[idx] = append([]byte(nil), oob[t]...)
			}
		}
	}
	b.lwlLatency[lwl] = lat
	b.nextLWL = lwl + 1
	a.counters.Programs++
	a.counters.ProgramTime += lat
	return lat, nil
}

// ReadResult describes one page read.
type ReadResult struct {
	Data    []byte
	Latency float64 // µs, including ECC retry penalties
	Retries int
	ErrBits int // raw bit errors before correction
}

// Read senses one page, applies the ECC model, and returns the payload.
// It returns ErrUncorrectable when the error count exceeds the retry decode.
func (a *Array) Read(addr PageAddr) (ReadResult, error) {
	i, err := a.blockIndex(addr.BlockAddr)
	if err != nil {
		return ReadResult{}, err
	}
	if addr.LWL < 0 || addr.LWL >= a.geo.LWLsPerBlock() ||
		addr.Type < 0 || addr.Type >= pv.NumPageTypes {
		return ReadResult{}, fmt.Errorf("%w: %+v", ErrBadAddress, addr)
	}
	b := &a.blocks[i]
	idx := addr.PageIndex()
	if !b.programmed.get(idx) {
		return ReadResult{}, fmt.Errorf("%w: %v lwl=%d %v", ErrNotProgrammed, addr.BlockAddr, addr.LWL, addr.Type)
	}
	layer, str := a.geo.LayerString(addr.LWL)
	coord := pv.Coord{Chip: addr.Chip, Plane: addr.Plane, Block: addr.Block, Layer: layer, String: str}
	n := a.nonce()
	lat := a.kern.ReadLatency(coord, addr.Type, n)
	errBits := a.sampleErrBits(coord, b, n)
	if b.corrupted.get(idx) {
		errBits = a.ecc.RetryBits + 1
	}
	if a.chipDown != nil && a.chipDown[addr.Chip] {
		errBits = a.ecc.RetryBits + 1
	} else if a.failReads != nil && a.failReads[addr.Chip] > 0 {
		a.failReads[addr.Chip]--
		errBits = a.ecc.RetryBits + 1
	}
	retries := 0
	corrected := errBits <= a.ecc.CorrectableBits
	for !corrected && retries < a.ecc.MaxRetries {
		retries++
		lat += a.ecc.RetryPenalty
		corrected = errBits <= a.ecc.RetryBits
	}
	a.counters.Reads++
	a.counters.ReadRetries += uint64(retries)
	a.counters.ReadTime += lat
	if !corrected {
		a.counters.ReadFails++
		return ReadResult{Latency: lat, Retries: retries, ErrBits: errBits}, ErrUncorrectable
	}
	return ReadResult{Data: b.data[idx], Latency: lat, Retries: retries, ErrBits: errBits}, nil
}

// sampleErrBits draws a raw error-bit count for one page read: a normal
// approximation of Binomial(pageBits, RBER), deterministic per nonce.
func (a *Array) sampleErrBits(c pv.Coord, b *block, nonce uint64) int {
	rber := a.kern.RBER(c, b.peCycles, b.retention)
	bits := float64((a.geo.PageSize + a.geo.SpareSize) * 8)
	mean := rber * bits
	sd := math.Sqrt(mean * (1 - rber))
	h := prng.Hash(a.seed, 101, c.Chip, c.Plane, c.Block, c.Layer, c.String)
	v := mean + sd*prng.NormalFromHash(prng.SplitMix64(h^nonce))
	if v < 0 {
		return 0
	}
	return int(v)
}

// MultiOpResult reports a multi-plane command: the per-member latencies, the
// completion latency (the maximum), the extra latency (max − min), which is
// the quantity the paper minimizes, and the indices of members whose block
// failed (bad block on erase).
type MultiOpResult struct {
	PerMember []float64
	Latency   float64
	Extra     float64
	Failed    []int
}

func summarize(lats []float64, failed []int) MultiOpResult {
	max, min := lats[0], lats[0]
	for _, v := range lats[1:] {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	return MultiOpResult{PerMember: lats, Latency: max, Extra: max - min, Failed: failed}
}

func (a *Array) checkDistinctLanes(addrs []BlockAddr) error {
	if len(addrs) == 0 {
		return ErrEmptyMultiOp
	}
	// Members are at most one per lane (a handful), so a quadratic scan
	// beats allocating a set on what is the FTL's per-flush path.
	for i, ad := range addrs {
		if _, err := a.blockIndex(ad); err != nil {
			return err
		}
		l := ad.Lane(a.geo)
		for j := 0; j < i; j++ {
			if addrs[j].Lane(a.geo) == l {
				return fmt.Errorf("%w: lane %d", ErrLaneConflict, l)
			}
		}
	}
	return nil
}

// EraseMulti erases the given blocks (one per lane) as a multi-plane erase.
// The command completes when the slowest member completes. Members whose
// erase fails (bad block) are reported in the result's Failed list rather
// than aborting the command, matching the per-plane status a real MP erase
// returns; any other error aborts.
func (a *Array) EraseMulti(addrs []BlockAddr) (MultiOpResult, error) {
	if err := a.checkDistinctLanes(addrs); err != nil {
		return MultiOpResult{}, err
	}
	lats := make([]float64, len(addrs))
	var failed []int
	for i, ad := range addrs {
		lat, err := a.Erase(ad)
		switch {
		case errors.Is(err, ErrBadBlock):
			failed = append(failed, i)
		case err != nil:
			return MultiOpResult{}, err
		}
		lats[i] = lat
	}
	return summarize(lats, failed), nil
}

// ProgramMulti programs word-line lwl of each block (one per lane) as a
// multi-plane word-line program. pages[i] holds the payloads for member i.
// The command completes when the slowest member completes.
func (a *Array) ProgramMulti(addrs []BlockAddr, lwl int, pages [][][]byte) (MultiOpResult, error) {
	if err := a.checkDistinctLanes(addrs); err != nil {
		return MultiOpResult{}, err
	}
	if pages != nil && len(pages) != len(addrs) {
		return MultiOpResult{}, fmt.Errorf("flash: %d page sets for %d members", len(pages), len(addrs))
	}
	lats := make([]float64, len(addrs))
	for i, ad := range addrs {
		var p [][]byte
		if pages != nil {
			p = pages[i]
		}
		lat, err := a.Program(ad, lwl, p)
		if err != nil {
			return MultiOpResult{}, err
		}
		lats[i] = lat
	}
	return summarize(lats, nil), nil
}

// ReadMulti reads one page from each of several lanes in parallel (a
// superpage read): the call completes when the slowest member completes.
// All members must be on distinct lanes and programmed; an ECC failure on
// any member fails the whole read.
func (a *Array) ReadMulti(addrs []PageAddr) ([]ReadResult, MultiOpResult, error) {
	if len(addrs) == 0 {
		return nil, MultiOpResult{}, ErrEmptyMultiOp
	}
	blocks := make([]BlockAddr, len(addrs))
	for i, ad := range addrs {
		blocks[i] = ad.BlockAddr
	}
	if err := a.checkDistinctLanes(blocks); err != nil {
		return nil, MultiOpResult{}, err
	}
	results := make([]ReadResult, len(addrs))
	lats := make([]float64, len(addrs))
	for i, ad := range addrs {
		r, err := a.Read(ad)
		if err != nil {
			return nil, MultiOpResult{}, err
		}
		results[i] = r
		lats[i] = r.Latency
	}
	return results, summarize(lats, nil), nil
}

// ReadOOB returns the spare-area bytes of a programmed page (nil if none
// were written). Spare-area reads carry their own protection and do not go
// through the data-path ECC model.
func (a *Array) ReadOOB(addr PageAddr) ([]byte, error) {
	i, err := a.blockIndex(addr.BlockAddr)
	if err != nil {
		return nil, err
	}
	if addr.LWL < 0 || addr.LWL >= a.geo.LWLsPerBlock() || addr.Type < 0 || addr.Type >= pv.NumPageTypes {
		return nil, fmt.Errorf("%w: %+v", ErrBadAddress, addr)
	}
	b := &a.blocks[i]
	idx := addr.PageIndex()
	if !b.programmed.get(idx) {
		return nil, fmt.Errorf("%w: %v lwl=%d %v", ErrNotProgrammed, addr.BlockAddr, addr.LWL, addr.Type)
	}
	if b.oob == nil {
		return nil, nil
	}
	return b.oob[idx], nil
}

// InjectCorruption forces every future read of the page to fail ECC — the
// fault-injection hook used to exercise reconstruction paths. The corruption
// clears when the block is erased.
func (a *Array) InjectCorruption(addr PageAddr) error {
	i, err := a.blockIndex(addr.BlockAddr)
	if err != nil {
		return err
	}
	if addr.LWL < 0 || addr.LWL >= a.geo.LWLsPerBlock() || addr.Type < 0 || addr.Type >= pv.NumPageTypes {
		return fmt.Errorf("%w: %+v", ErrBadAddress, addr)
	}
	b := &a.blocks[i]
	if b.corrupted == nil {
		b.corrupted = newBitset(a.geo.LWLsPerBlock() * PagesPerLWL)
	}
	b.corrupted.set(addr.PageIndex())
	return nil
}

// FailNextReads arms a transient read-error burst on one chip: the next n
// page reads targeting the chip return ErrUncorrectable (after the full
// retry ladder), regardless of the page's real error count. The countdown
// decrements in array operation order, so campaigns replaying the same
// request sequence hit the same reads. Calling with n <= 0 disarms the chip.
func (a *Array) FailNextReads(chip, n int) error {
	if chip < 0 || chip >= a.geo.Chips {
		return fmt.Errorf("%w: chip %d", ErrBadAddress, chip)
	}
	if a.failReads == nil {
		a.failReads = make([]int, a.geo.Chips)
	}
	if n < 0 {
		n = 0
	}
	a.failReads[chip] = n
	return nil
}

// PendingReadFailures returns how many armed read failures remain on a chip.
func (a *Array) PendingReadFailures(chip int) int {
	if a.failReads == nil || chip < 0 || chip >= len(a.failReads) {
		return 0
	}
	return a.failReads[chip]
}

// SetChipReadFailure drops (or revives) a whole chip's read path: while set,
// every page read on the chip returns ErrUncorrectable. Programs and erases
// still succeed — the stored data is intact, only sensing fails — so RAID
// reconstruction and refresh can relocate the data while the chip is down.
func (a *Array) SetChipReadFailure(chip int, down bool) error {
	if chip < 0 || chip >= a.geo.Chips {
		return fmt.Errorf("%w: chip %d", ErrBadAddress, chip)
	}
	if a.chipDown == nil {
		if !down {
			return nil
		}
		a.chipDown = make([]bool, a.geo.Chips)
	}
	a.chipDown[chip] = down
	return nil
}

// ChipReadFailure reports whether the chip's read path is currently dropped.
func (a *Array) ChipReadFailure(chip int) bool {
	return a.chipDown != nil && chip >= 0 && chip < len(a.chipDown) && a.chipDown[chip]
}

// LWLLatencies returns the program latencies observed for each word-line of
// a fully or partially programmed block (zero for unprogrammed lines). This
// is the raw material of the gathering stage.
func (a *Array) LWLLatencies(addr BlockAddr) ([]float64, error) {
	i, err := a.blockIndex(addr)
	if err != nil {
		return nil, err
	}
	b := &a.blocks[i]
	out := make([]float64, a.geo.LWLsPerBlock())
	copy(out, b.lwlLatency)
	return out, nil
}
