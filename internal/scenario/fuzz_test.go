package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzCampaignSpec hammers the strict spec parser: whatever bytes arrive,
// it must never panic, and any spec it accepts must be internally
// consistent and survive a marshal/re-parse round trip (the property the
// ftlstorm driver relies on when echoing the resolved spec).
func FuzzCampaignSpec(f *testing.F) {
	f.Add([]byte(`{"name":"x","seed":9}`))
	f.Add([]byte(`{"name":"smoke","seed":42,"backends":3,"replicas":2,"ops":600,` +
		`"working_set":512,"events":[` +
		`{"at_op":60,"kind":"retention-bake","backend":2,"units":0.5},` +
		`{"at_op":120,"kind":"bad-blocks","backend":0,"count":4},` +
		`{"at_op":420,"kind":"power-cut","backend":1,"recover_us":5000},` +
		`{"at_op":480,"kind":"kill-backend","backend":0},` +
		`{"at_op":560,"kind":"restart-backend","backend":0}],` +
		`"tenants":{"noisy_quota":2}}`))
	f.Add([]byte(`{"events":[{"at_op":5,"kind":"chip-dropout","backend":1,"chip":2},` +
		`{"at_op":9,"kind":"chip-revive","backend":1,"chip":2}]}`))
	f.Add([]byte(`{"events":[{"at_op":9,"kind":"kill-backend"}]}`))    // never restarted
	f.Add([]byte(`{"events":[{"at_op":9,"kind":"meteor-strike"}]}`))   // unknown kind
	f.Add([]byte(`{"name":"x","sedd":9}`))                             // typoed field
	f.Add([]byte(`{"name":"x"} trailing`))                             // trailing bytes
	f.Add([]byte(`{"ops":-1}`))                                        // bad scalar
	f.Add([]byte(`{"tenants":{"noisy_quota":0,"noisy_factor":-3}}`))   // bad tenant phase
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		// Accepted specs carry their defaults.
		if s.Backends < 1 || s.Replicas < 1 || s.Replicas > s.Backends ||
			s.Ops < 1 || s.WorkingSet < 1 || s.GapUS < 0 ||
			s.WriteFrac < 0 || s.WriteFrac > 1 {
			t.Fatalf("accepted spec with bad scalars: %+v", s)
		}
		for i, e := range s.Events {
			if !eventKinds[e.Kind] {
				t.Fatalf("accepted unknown event kind %q", e.Kind)
			}
			if e.AtOp < 0 || e.AtOp > s.Ops || e.Backend < 0 || e.Backend >= s.Backends {
				t.Fatalf("accepted out-of-range event %d: %+v", i, e)
			}
			if i > 0 && e.AtOp < s.Events[i-1].AtOp {
				t.Fatalf("accepted unsorted events: %+v", s.Events)
			}
			if e.Kind == KindBadBlocks && e.Seed == 0 {
				t.Fatalf("bad-blocks event %d kept seed 0", i)
			}
		}
		// Round trip: marshal and re-parse must accept and agree.
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		s2, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
		out2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Fatalf("round trip drifted:\n%s\n%s", out, out2)
		}
	})
}
