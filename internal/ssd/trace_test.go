package ssd

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"superfast/internal/telemetry"
)

// mixedTrace builds a deterministic stamped workload exercising writes,
// reads, and a trim, against a device warmed by FillSequential.
func mixedTrace(d *ConcurrentDevice, n int) []Request {
	base := d.Now() + 1000
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		arr := base + float64(i)*3
		switch {
		case i%5 == 4:
			reqs = append(reqs, Request{Kind: OpTrim, LPN: int64(40 + i), Arrival: arr})
		case i%3 == 0:
			reqs = append(reqs, Request{Kind: OpWrite, LPN: int64(i % 16), Data: []byte{byte(i), 0xA5}, Arrival: arr})
		default:
			reqs = append(reqs, Request{Kind: OpRead, LPN: int64(16 + i%24), Arrival: arr})
		}
	}
	return reqs
}

// tracedRun warms a device, attaches a fresh tracer after the fill, replays
// the same stamped workload at the given depth, and returns the rendered
// Chrome trace plus the device.
func tracedRun(t *testing.T, depth int) ([]byte, *telemetry.Trace, *ConcurrentDevice, []ChipStats) {
	t.Helper()
	d := concurrentDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	afterFill := d.ChipStats()
	tr := telemetry.NewTrace()
	d.SetTracer(tr)
	replayTickets(t, d, mixedTrace(d, 40), depth)
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), tr, d, afterFill
}

func TestTraceGolden(t *testing.T) {
	// Acceptance: the exported trace is byte-identical across runs AND
	// across worker counts, pinned by a golden file. Regenerate with
	// UPDATE_GOLDEN=1 go test ./internal/ssd -run TestTraceGolden.
	out1, _, _, _ := tracedRun(t, 1)
	out4, _, _, _ := tracedRun(t, 4)
	if !bytes.Equal(out1, out4) {
		t.Fatal("trace bytes differ between depth 1 and depth 4")
	}

	golden := filepath.Join("testdata", "trace.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(out1))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(out1, want) {
		t.Fatalf("trace drifted from golden (%d vs %d bytes); if intended, regenerate with UPDATE_GOLDEN=1", len(out1), len(want))
	}

	// The golden must be a valid Chrome trace: a JSON array whose entries
	// carry the fields Perfetto needs.
	var evs []map[string]any
	if err := json.Unmarshal(out1, &evs); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range evs {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("span without dur: %v", ev)
			}
		}
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["i"] == 0 {
		t.Fatalf("trace lacks metadata/span/instant records: %v", phases)
	}
}

func TestTraceCoversPipeline(t *testing.T) {
	_, tr, d, _ := tracedRun(t, 1)
	evs := tr.Events()
	var host, ftlStage, flash, gc int
	for _, ev := range evs {
		switch ev.Cat {
		case "host":
			host++
			if ev.Ph != telemetry.PhaseSpan || ev.Dur < 0 {
				t.Fatalf("bad host span %+v", ev)
			}
		case "ftl":
			ftlStage++
		case "flash":
			flash++
			if name := ev.Name; name != "read" && name != "program" && name != "erase" {
				t.Fatalf("unknown flash op %q", name)
			}
			if ev.GC {
				gc++
			}
		}
	}
	if host != 40 {
		t.Fatalf("host spans = %d, want one per request", host)
	}
	if ftlStage == 0 || flash == 0 {
		t.Fatalf("pipeline stages missing: ftl=%d flash=%d", ftlStage, flash)
	}
	_ = d
}

func TestChipStatsMatchJournalAcrossDepths(t *testing.T) {
	// Every flash span in the trace is one chip op; the ChipStats deltas over
	// the traced window must sum to exactly the journalled work, at any
	// submission depth, and the per-chip schedules must agree across depths.
	type delta struct {
		ops  uint64
		busy float64
	}
	run := func(depth int) (map[int]delta, []telemetry.Event, []ChipStats) {
		_, tr, d, afterFill := tracedRun(t, depth)
		ds := map[int]delta{}
		final := d.ChipStats()
		for i, cs := range final {
			ds[cs.Chip] = delta{
				ops:  cs.Ops - afterFill[i].Ops,
				busy: cs.Busy - afterFill[i].Busy,
			}
		}
		return ds, tr.Events(), final
	}
	d1, evs1, cs1 := run(1)
	d4, _, cs4 := run(4)
	if !reflect.DeepEqual(cs1, cs4) {
		t.Fatalf("chip stats differ across depths:\n%+v\n%+v", cs1, cs4)
	}
	if !reflect.DeepEqual(d1, d4) {
		t.Fatalf("chip deltas differ across depths:\n%+v\n%+v", d1, d4)
	}
	journal := map[int]delta{}
	for _, ev := range evs1 {
		if ev.Cat != "flash" {
			continue
		}
		chip := ev.Track - telemetry.TrackChipBase
		dd := journal[chip]
		dd.ops++
		dd.busy += ev.Dur
		journal[chip] = dd
	}
	for chip, want := range journal {
		got := d1[chip]
		if got.ops != want.ops {
			t.Fatalf("chip %d ops = %d, trace journal has %d", chip, got.ops, want.ops)
		}
		if math.Abs(got.busy-want.busy) > 1e-9 {
			t.Fatalf("chip %d busy = %v, trace journal sums to %v", chip, got.busy, want.busy)
		}
	}
	for chip, got := range d1 {
		if _, ok := journal[chip]; !ok && got.ops != 0 {
			t.Fatalf("chip %d did %d untraced ops", chip, got.ops)
		}
	}
}

func TestDigestDrainSurvivesErrors(t *testing.T) {
	// A failed submission must still advance the ticket-order digest drain:
	// later completions may not be stranded in the reorder buffer.
	d := concurrentDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpRead, LPN: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpRead, LPN: -1}); err == nil {
		t.Fatal("out-of-range read should fail")
	}
	if _, err := d.Submit(Request{Kind: OpRead, LPN: 4}); err != nil {
		t.Fatal(err)
	}
	fill := uint64(d.FTL().Capacity())
	if got := d.LatencyDigest().N; got != fill+2 {
		t.Fatalf("digest n = %d, want %d (fill + 2 successful reads)", got, fill+2)
	}
}

func TestEmptyBatchAdvancesTicket(t *testing.T) {
	// An empty batch consumes its ticket: later submissions must not block
	// behind it and the digest drain must pass over it.
	d := concurrentDevice(t)
	if _, err := d.SubmitBatch(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(Request{Kind: OpWrite, LPN: 0, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if got := d.LatencyDigest().N; got != 1 {
		t.Fatalf("digest n = %d, want 1", got)
	}
}

func TestStatsLatenciesGatedByRetention(t *testing.T) {
	d := concurrentDevice(t)
	if _, err := d.Submit(Request{Kind: OpWrite, LPN: 0, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); len(s.Latencies) != 0 {
		t.Fatalf("retention off, but Stats kept %d latencies", len(s.Latencies))
	}
	r := concurrentDeviceCfg(t, func(cfg *Config) { cfg.RetainLatencies = true })
	if _, err := r.Submit(Request{Kind: OpWrite, LPN: 0, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); len(s.Latencies) != 1 {
		t.Fatalf("retention on, but Stats kept %d latencies", len(s.Latencies))
	}
}

func TestConcurrentMetricsWiring(t *testing.T) {
	d := concurrentDevice(t)
	if err := d.FillSequential(nil); err != nil {
		t.Fatal(err)
	}
	m := telemetry.New()
	d.SetMetrics(m)
	replayTickets(t, d, readTrace(d, 16), 4)
	if got := m.Gauge("ssd.qdepth").Value(); got != 0 {
		t.Fatalf("qdepth after drain = %v, want 0", got)
	}
	if m.Gauge("ssd.qdepth").Max() < 1 {
		t.Fatal("qdepth watermark never rose during submissions")
	}
	// The registry digest replaces the internal one on attach, so only the
	// 16 traced reads are measured — the warm fill stays out.
	snap := d.LatencyDigest()
	if snap.N != 16 {
		t.Fatalf("digest n = %d, want 16 (fill must not pollute the registry digest)", snap.N)
	}
	if snap.P50 <= 0 || snap.Mean <= 0 {
		t.Fatalf("degenerate latency digest %+v", snap)
	}
	if got := m.Counter("ftl.reads.host").Value(); got != 16 {
		t.Fatalf("ftl.reads.host = %d, want 16", got)
	}
	d.SetMetrics(nil)
	if _, err := d.Submit(Request{Kind: OpRead, LPN: 0}); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("ftl.reads.host").Value(); got != 16 {
		t.Fatalf("unwired device still bumped counter: %d", got)
	}
}
