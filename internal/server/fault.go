package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"superfast/internal/ftl"
)

// FaultRequest is the OpFault payload: one JSON-encoded fault-injection
// command. Kind selects the fault; the other fields parameterize it and are
// ignored when they do not apply. Unknown fields are rejected so a campaign
// typo cannot silently inject the wrong fault.
type FaultRequest struct {
	// Kind is one of:
	//   "bad-blocks"       — mark Count sealed blocks bad, drawn with Seed
	//   "chip-read-errors" — next Count reads on Chip fail ECC
	//   "chip-dropout"     — every read on Chip fails until revived
	//   "chip-revive"      — undo a chip-dropout
	//   "retention-bake"   — age all stored data by Units retention units
	//   "power-cut"        — checkpoint, power-cycle, restore; the device is
	//                        unavailable for RecoverUS simulated microseconds
	//   "die"              — invoke Config.OnFaultDie (process kill)
	Kind      string  `json:"kind"`
	Count     int     `json:"count,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	Chip      int     `json:"chip,omitempty"`
	Units     float64 `json:"units,omitempty"`
	RecoverUS float64 `json:"recover_us,omitempty"`
}

// FaultReport is the OpFault response payload.
type FaultReport struct {
	Kind string `json:"kind"`
	// Marked is how many blocks a bad-blocks storm actually marked (the
	// device may hold fewer sealed blocks than requested).
	Marked int `json:"marked,omitempty"`
	// Power-cut timeline on the simulated clock, plus the checkpoint size.
	CutAt           float64 `json:"cut_at,omitempty"`
	RecoveredAt     float64 `json:"recovered_at,omitempty"`
	CheckpointBytes int     `json:"checkpoint_bytes,omitempty"`
}

// handleFault applies one fault-injection command. It runs inline on the
// connection reader so faults are ordered against the same connection's
// later data frames. The caller has already checked Config.EnableFaults.
func (s *Server) handleFault(f Frame) Response {
	dec := json.NewDecoder(bytes.NewReader(f.Payload))
	dec.DisallowUnknownFields()
	var req FaultRequest
	if err := dec.Decode(&req); err != nil {
		return Response{Status: StatusBadRequest, ID: f.ID, Payload: []byte("fault payload: " + err.Error())}
	}
	rep := FaultReport{Kind: req.Kind}
	var err error
	switch req.Kind {
	case "bad-blocks":
		s.dev.WithFTL(func(ft *ftl.FTL) {
			blocks, merr := ft.MarkBadBlocks(req.Count, req.Seed)
			rep.Marked = len(blocks)
			err = merr
		})
	case "chip-read-errors":
		s.dev.WithFTL(func(ft *ftl.FTL) {
			err = ft.Array().FailNextReads(req.Chip, req.Count)
		})
	case "chip-dropout":
		s.dev.WithFTL(func(ft *ftl.FTL) {
			err = ft.Array().SetChipReadFailure(req.Chip, true)
		})
	case "chip-revive":
		s.dev.WithFTL(func(ft *ftl.FTL) {
			err = ft.Array().SetChipReadFailure(req.Chip, false)
		})
	case "retention-bake":
		s.dev.WithFTL(func(ft *ftl.FTL) {
			ft.Array().AddRetention(req.Units)
		})
	case "power-cut":
		report, perr := s.dev.PowerCycle(req.RecoverUS)
		if perr != nil {
			err = perr
		} else {
			rep.CutAt = report.CutAt
			rep.RecoveredAt = report.RecoveredAt
			rep.CheckpointBytes = report.CheckpointBytes
		}
	case "die":
		if s.cfg.OnFaultDie == nil {
			return Response{Status: StatusBadRequest, ID: f.ID, Payload: []byte("die fault not armed")}
		}
		// Respond first, kill after: OnFaultDie runs on its own goroutine so
		// the acknowledgement can flush through the writer before shutdown
		// tears the connection down.
		s.dieOnce.Do(func() { go s.cfg.OnFaultDie() })
	default:
		return Response{Status: StatusBadRequest, ID: f.ID, Payload: []byte(fmt.Sprintf("unknown fault kind %q", req.Kind))}
	}
	if err != nil {
		return Response{Status: StatusBadRequest, ID: f.ID, Payload: []byte(err.Error())}
	}
	payload, merr := json.Marshal(rep)
	if merr != nil {
		return Response{Status: StatusInternal, ID: f.ID, Payload: []byte(merr.Error())}
	}
	return Response{Status: StatusOK, ID: f.ID, Payload: payload}
}
