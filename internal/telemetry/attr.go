package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// BlockKey identifies one physical flash block. Telemetry keeps its own key
// type (instead of importing the flash package) so the observability layer
// stays dependency-free and usable from any level of the stack.
type BlockKey struct {
	Chip  int
	Plane int
	Block int
}

func (k BlockKey) String() string {
	return fmt.Sprintf("c%d/p%d/b%d", k.Chip, k.Plane, k.Block)
}

// LaneKey identifies one plane lane (a chip/plane pair).
type LaneKey struct {
	Chip  int
	Plane int
}

func (k LaneKey) String() string {
	return fmt.Sprintf("c%d/p%d", k.Chip, k.Plane)
}

// attrBuckets bounds the log-bucketed extra-latency histogram: bucket 0 is
// [0, 1) µs, bucket i ≥ 1 is [2^(i-1), 2^i) µs; 40 buckets cover up to ~2^39
// µs, far beyond any flash latency.
const attrBuckets = 40

// blockAttr aggregates one block's multi-plane history.
type blockAttr struct {
	ops       uint64  // multi-plane commands the block participated in
	straggles uint64  // commands where the block was the slowest member
	extraUS   float64 // extra latency imposed while slowest (max − min), µs
}

// attrSplitCell is one cell of the (source × class × op) extra-latency split.
type attrSplitCell struct {
	ops     uint64
	extraUS float64
}

// Attribution answers "which block, which lane, when" for the paper's extra
// latency: every multi-plane program/erase is reported with its per-member
// latencies, and the full extra latency (max − min) is attributed to the
// single slowest member — the straggler. Aggregates are per-block, per-lane,
// per (host|gc) × (fast|slow) × (program|erase) class, plus log-bucketed
// extra-latency histograms per op type.
//
// Safe for concurrent use, but determinism of the report requires callers to
// record in a deterministic order — the FTL records under the serialized
// ticket-order stage, so reports are byte-identical across worker counts.
// A nil *Attribution disables recording; hook sites guard with one nil check.
type Attribution struct {
	mu     sync.Mutex
	blocks map[BlockKey]*blockAttr
	lanes  map[LaneKey]*blockAttr
	// split[gc][fast][kindIdx]: kindIdx 0 = program, 1 = erase.
	split [2][2][2]attrSplitCell
	hist  [2][attrBuckets]uint64 // log₂ extra-latency histogram per op kind
	ops   [2]uint64
	extra [2]float64
}

// NewAttribution returns an empty attribution table.
func NewAttribution() *Attribution {
	return &Attribution{
		blocks: make(map[BlockKey]*blockAttr),
		lanes:  make(map[LaneKey]*blockAttr),
	}
}

// kindIndex maps an FTL op-journal kind byte to a split index.
func kindIndex(kind byte) int {
	if kind == 'e' {
		return 1
	}
	return 0 // 'p'
}

func kindName(idx int) string {
	if idx == 1 {
		return "erase"
	}
	return "program"
}

func boolIdx(b bool) int {
	if b {
		return 1
	}
	return 0
}

// extraBucket returns the histogram bucket of an extra-latency value:
// bucket 0 is [0, 1) µs, bucket i is [2^(i-1), 2^i) µs.
func extraBucket(extra float64) int {
	i := 0
	for v := extra; v >= 1 && i < attrBuckets-1; v /= 2 {
		i++
	}
	return i
}

// Record attributes one multi-plane command: kind is 'p' (program) or 'e'
// (erase), gc marks GC-issued work, fast marks a fast-class superblock,
// members/lats are the per-member blocks and observed latencies. The full
// extra latency (max − min) is charged to the first slowest member; members
// and lats are not retained, so callers may reuse their backing arrays.
func (a *Attribution) Record(kind byte, gc, fast bool, members []BlockKey, lats []float64) {
	if len(members) == 0 || len(members) != len(lats) {
		return
	}
	slowest := 0
	max, min := lats[0], lats[0]
	for i, v := range lats[1:] {
		if v > max {
			max = v
			slowest = i + 1
		}
		if v < min {
			min = v
		}
	}
	extra := max - min
	ki := kindIndex(kind)

	a.mu.Lock()
	defer a.mu.Unlock()
	for _, m := range members {
		b := a.blocks[m]
		if b == nil {
			b = &blockAttr{}
			a.blocks[m] = b
		}
		b.ops++
	}
	sb := a.blocks[members[slowest]]
	sb.straggles++
	sb.extraUS += extra
	lk := LaneKey{Chip: members[slowest].Chip, Plane: members[slowest].Plane}
	lane := a.lanes[lk]
	if lane == nil {
		lane = &blockAttr{}
		a.lanes[lk] = lane
	}
	lane.straggles++
	lane.extraUS += extra
	cell := &a.split[boolIdx(gc)][boolIdx(fast)][ki]
	cell.ops++
	cell.extraUS += extra
	a.hist[ki][extraBucket(extra)]++
	a.ops[ki]++
	a.extra[ki] += extra
}

// TotalExtraUS returns the total attributed extra latency across both op
// kinds — by construction the sum of every block's ExtraUS.
func (a *Attribution) TotalExtraUS() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.extra[0] + a.extra[1]
}

// Ops returns the number of recorded multi-plane commands.
func (a *Attribution) Ops() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ops[0] + a.ops[1]
}

// AttrBlock is one block row of the report.
type AttrBlock struct {
	Block     string  `json:"block"`
	Ops       uint64  `json:"ops"`
	Straggles uint64  `json:"straggles"`
	ExtraUS   float64 `json:"extra_us"`
}

// AttrLane is one lane row of the report.
type AttrLane struct {
	Lane      string  `json:"lane"`
	Straggles uint64  `json:"straggles"`
	ExtraUS   float64 `json:"extra_us"`
}

// AttrSplit is one cell of the source × class × op extra-latency split.
type AttrSplit struct {
	Source  string  `json:"source"` // "host" | "gc"
	Class   string  `json:"class"`  // "fast" | "slow"
	Op      string  `json:"op"`     // "program" | "erase"
	Ops     uint64  `json:"ops"`
	ExtraUS float64 `json:"extra_us"`
}

// AttrBucket is one non-empty histogram bucket: extra latency in
// [LoUS, HiUS) µs.
type AttrBucket struct {
	LoUS  float64 `json:"lo_us"`
	HiUS  float64 `json:"hi_us"`
	Count uint64  `json:"count"`
}

// AttrHist is the log-bucketed extra-latency histogram of one op type.
type AttrHist struct {
	Op      string       `json:"op"`
	Buckets []AttrBucket `json:"buckets"`
}

// AttrReport is the exportable attribution summary. All slices are sorted by
// deterministic keys, and map keys render sorted, so the JSON encoding of a
// report is byte-identical across runs that recorded the same commands.
type AttrReport struct {
	Ops        map[string]uint64  `json:"ops"`
	ExtraUS    map[string]float64 `json:"extra_us"`
	Split      []AttrSplit        `json:"split"`
	Stragglers []AttrBlock        `json:"stragglers"` // top-K by extra latency
	Lanes      []AttrLane         `json:"lanes"`
	Hist       []AttrHist         `json:"hist"`
}

// blockKeyLess orders block keys chip-major.
func blockKeyLess(a, b BlockKey) bool {
	if a.Chip != b.Chip {
		return a.Chip < b.Chip
	}
	if a.Plane != b.Plane {
		return a.Plane < b.Plane
	}
	return a.Block < b.Block
}

// Report flattens the table. topK bounds the straggler list (≤ 0 means all
// blocks); ties break toward the lower block address so the cut is stable.
func (a *Attribution) Report(topK int) AttrReport {
	a.mu.Lock()
	defer a.mu.Unlock()

	r := AttrReport{
		Ops: map[string]uint64{
			"program": a.ops[0],
			"erase":   a.ops[1],
		},
		ExtraUS: map[string]float64{
			"program": a.extra[0],
			"erase":   a.extra[1],
			"total":   a.extra[0] + a.extra[1],
		},
	}

	type blockRow struct {
		key BlockKey
		at  blockAttr
	}
	rows := make([]blockRow, 0, len(a.blocks))
	for k, b := range a.blocks {
		rows = append(rows, blockRow{key: k, at: *b})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].at.extraUS != rows[j].at.extraUS {
			return rows[i].at.extraUS > rows[j].at.extraUS
		}
		return blockKeyLess(rows[i].key, rows[j].key)
	})
	if topK > 0 && topK < len(rows) {
		rows = rows[:topK]
	}
	r.Stragglers = make([]AttrBlock, len(rows))
	for i, row := range rows {
		r.Stragglers[i] = AttrBlock{
			Block:     row.key.String(),
			Ops:       row.at.ops,
			Straggles: row.at.straggles,
			ExtraUS:   row.at.extraUS,
		}
	}

	laneKeys := make([]LaneKey, 0, len(a.lanes))
	for k := range a.lanes {
		laneKeys = append(laneKeys, k)
	}
	sort.Slice(laneKeys, func(i, j int) bool {
		if laneKeys[i].Chip != laneKeys[j].Chip {
			return laneKeys[i].Chip < laneKeys[j].Chip
		}
		return laneKeys[i].Plane < laneKeys[j].Plane
	})
	r.Lanes = make([]AttrLane, len(laneKeys))
	for i, k := range laneKeys {
		l := a.lanes[k]
		r.Lanes[i] = AttrLane{Lane: k.String(), Straggles: l.straggles, ExtraUS: l.extraUS}
	}

	for _, gc := range []int{0, 1} {
		for _, fast := range []int{0, 1} {
			for ki := 0; ki < 2; ki++ {
				cell := a.split[gc][fast][ki]
				if cell.ops == 0 {
					continue
				}
				src := "host"
				if gc == 1 {
					src = "gc"
				}
				class := "slow"
				if fast == 1 {
					class = "fast"
				}
				r.Split = append(r.Split, AttrSplit{
					Source: src, Class: class, Op: kindName(ki),
					Ops: cell.ops, ExtraUS: cell.extraUS,
				})
			}
		}
	}

	for ki := 0; ki < 2; ki++ {
		h := AttrHist{Op: kindName(ki)}
		for b, n := range a.hist[ki] {
			if n == 0 {
				continue
			}
			lo, hi := 0.0, 1.0
			if b > 0 {
				lo = float64(uint64(1) << (b - 1))
				hi = float64(uint64(1) << b)
			}
			h.Buckets = append(h.Buckets, AttrBucket{LoUS: lo, HiUS: hi, Count: n})
		}
		if len(h.Buckets) > 0 {
			r.Hist = append(r.Hist, h)
		}
	}
	return r
}

// WriteJSON writes the report as indented JSON. The bytes are deterministic:
// slices are pre-sorted, maps encode with sorted keys, and floats use Go's
// shortest-round-trip formatting.
func (a *Attribution) WriteJSON(w io.Writer, topK int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Report(topK))
}
