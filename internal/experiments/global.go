package experiments

import (
	"superfast/internal/assembly"
	"superfast/internal/stats"
)

func init() {
	register("ablation-global", runAblationGlobal)
}

// runAblationGlobal bounds the window design: on two lanes (where the true
// global optimum is a min-cost matching and still tractable), how much of
// the globally achievable extra-latency reduction does the paper's window-8
// local search capture? Beyond two lanes the global problem is the NP-hard
// multidimensional assignment — the reason windows (and QSTR-MED's greedy)
// exist at all.
func runAblationGlobal(cfg Config) (*Result, error) {
	two := cfg
	two.LanesPerGroup = 2
	strategies := []assembly.Assembler{
		baseline(cfg),
		assembly.Optimal{Window: cfg.Window},
		assembly.Global{},
	}
	out, err := SweepStrategies(two, strategies)
	if err != nil {
		return nil, err
	}
	base := out[0]
	t := &stats.Table{
		Title:   "Ablation — window-8 local search vs global matching (2 lanes)",
		Headers: []string{"Method", "Extra PGM", "Imp. %"},
	}
	for _, o := range out {
		t.AddRow(o.Name, stats.FmtUS(o.MeanPgm)+" µs",
			stats.FmtPct(stats.Improvement(base.MeanPgm, o.MeanPgm)))
	}
	text := ""
	if len(out) == 3 {
		winGain := base.MeanPgm - out[1].MeanPgm
		globGain := base.MeanPgm - out[2].MeanPgm
		if globGain > 0 {
			text = "window-8 captures " + stats.FmtPct(winGain/globGain) + " of the global matching's gain\n"
		}
	}
	return &Result{ID: "ablation-global", Tables: []*stats.Table{t}, Text: text}, nil
}
