package ftl

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"superfast/internal/core"
	"superfast/internal/flash"
)

// ErrCheckpointCorrupt reports a checkpoint image that fails framing
// validation: wrong magic, torn/truncated body, or checksum mismatch. A
// power cut mid-checkpoint-write produces exactly this; callers should fall
// back to RecoverByScan, which rebuilds the mapping from OOB tags.
var ErrCheckpointCorrupt = errors.New("ftl: checkpoint corrupt")

// Checkpoint framing: a 12-byte header — magic, body length, body CRC32
// (IEEE), all big-endian — wrapped around the gob-encoded state. The length
// catches truncation (a torn write keeps a prefix), the CRC catches torn
// middles and bit rot, and validation happens before gob ever sees the
// bytes so corruption surfaces as one typed error instead of whatever
// decode error the mangled stream happens to trip first.
const (
	checkpointMagic     = "SFCP"
	checkpointHeaderLen = 12
)

// Checkpoint captures the FTL's RAM state — mapping tables, the superblock
// table, open-superblock positions, statistics and the QSTR-MED metadata
// snapshot — so a power cycle can restore the device without rescanning
// flash. Pending write buffers are flushed first (padded word-lines), the
// same policy real controllers apply on power-loss interrupts.
func (f *FTL) Checkpoint() ([]byte, error) {
	// Finish any in-flight partial collection first: its victim is in
	// neither the superblock table nor the free pool, so snapshotting
	// mid-collection would leak the blocks across the power cycle.
	if _, err := f.DrainGC(); err != nil {
		return nil, fmt.Errorf("ftl: checkpoint gc drain: %w", err)
	}
	if _, err := f.Flush(); err != nil {
		return nil, fmt.Errorf("ftl: checkpoint flush: %w", err)
	}
	st := checkpointState{
		Version:  checkpointVersion,
		L2P:      f.l2p,
		NextSBID: f.nextSBID,
		WriteSeq: f.writeSeq,
		Stats:    f.stats,
		Scheme:   f.scheme.Snapshot(),
	}
	for _, sb := range f.sbs {
		st.Superblocks = append(st.Superblocks, sbState{
			ID: sb.id, Members: sb.members, Speed: int(sb.speed),
			Valid: sb.valid, Sealed: sb.sealed, SealedAt: sb.sealedAt,
		})
	}
	for speed, open := range f.open {
		st.Open = append(st.Open, openSBState{
			Speed: int(speed), ID: open.sb.id, NextWL: open.nextWL,
		})
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, checkpointHeaderLen)) // header placeholder
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("ftl: checkpoint encode: %w", err)
	}
	out := buf.Bytes()
	body := out[checkpointHeaderLen:]
	copy(out, checkpointMagic)
	binary.BigEndian.PutUint32(out[4:], uint32(len(body)))
	binary.BigEndian.PutUint32(out[8:], crc32.ChecksumIEEE(body))
	return out, nil
}

const checkpointVersion = 1

type sbState struct {
	ID       int
	Members  []flash.BlockAddr
	Speed    int
	Valid    int
	Sealed   bool
	SealedAt uint64
}

type openSBState struct {
	Speed  int
	ID     int
	NextWL int
}

type checkpointState struct {
	Version     int
	L2P         []int64
	Superblocks []sbState
	Open        []openSBState
	NextSBID    int
	WriteSeq    uint64
	Stats       Stats
	Scheme      []byte
}

// checkpointBody validates the framing header and returns the gob body.
func checkpointBody(checkpoint []byte) ([]byte, error) {
	if len(checkpoint) < checkpointHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrCheckpointCorrupt, len(checkpoint), checkpointHeaderLen)
	}
	if string(checkpoint[:4]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCheckpointCorrupt, checkpoint[:4])
	}
	want := binary.BigEndian.Uint32(checkpoint[4:])
	body := checkpoint[checkpointHeaderLen:]
	if uint32(len(body)) != want {
		return nil, fmt.Errorf("%w: body is %d bytes, header says %d", ErrCheckpointCorrupt, len(body), want)
	}
	if sum := crc32.ChecksumIEEE(body); sum != binary.BigEndian.Uint32(checkpoint[8:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCheckpointCorrupt)
	}
	return body, nil
}

// Restore builds an FTL over the (data-retaining) array from a checkpoint
// taken with the same geometry and configuration.
func Restore(arr *flash.Array, cfg Config, checkpoint []byte) (*FTL, error) {
	body, err := checkpointBody(checkpoint)
	if err != nil {
		return nil, err
	}
	var st checkpointState
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&st); err != nil {
		return nil, fmt.Errorf("ftl: checkpoint decode: %w", err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("ftl: checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	f, err := New(arr, cfg)
	if err != nil {
		return nil, err
	}
	if len(st.L2P) != len(f.l2p) {
		return nil, fmt.Errorf("ftl: checkpoint maps %d pages, device has %d", len(st.L2P), len(f.l2p))
	}
	if err := f.scheme.RestoreSnapshot(st.Scheme); err != nil {
		return nil, err
	}
	// New() freed every block; pull back the ones that live in superblocks.
	f.sbs = make(map[int]*superblock)
	f.bySB = make(map[flash.BlockAddr]*superblock)
	inSB := map[flash.BlockAddr]bool{}
	for _, s := range st.Superblocks {
		sb := &superblock{
			id: s.ID, members: s.Members, speed: core.Speed(s.Speed),
			valid: s.Valid, sealed: s.Sealed, sealedAt: s.SealedAt,
		}
		f.sbs[sb.id] = sb
		for _, m := range sb.members {
			f.bySB[m] = sb
			inSB[m] = true
		}
	}
	// Rebuild the free pools from scratch: free = not in a superblock and
	// not retired, keyed by the restored gathered metadata.
	f.scheme = nil
	scheme, err := core.NewScheme(f.geo, cfg.K)
	if err != nil {
		return nil, err
	}
	if err := scheme.RestoreSnapshot(st.Scheme); err != nil {
		return nil, err
	}
	f.scheme = scheme
	for lane := 0; lane < f.geo.Lanes(); lane++ {
		chip, plane := f.geo.LaneChipPlane(lane)
		for b := 0; b < f.geo.BlocksPerPlane; b++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
			if inSB[addr] || scheme.Retired(addr) {
				continue
			}
			if err := scheme.AddFree(addr); err != nil {
				return nil, err
			}
		}
	}
	copy(f.l2p, st.L2P)
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for lpn, ppn := range f.l2p {
		if ppn >= 0 {
			f.p2l[ppn] = int64(lpn)
		}
	}
	// Reattach open superblocks at their write positions.
	f.open = make(map[core.Speed]*openState)
	for _, o := range st.Open {
		sb := f.sbs[o.ID]
		if sb == nil {
			return nil, fmt.Errorf("ftl: checkpoint open superblock %d missing", o.ID)
		}
		nl := len(sb.members)
		stt := &openState{sb: sb, nextWL: o.NextWL, parity: f.parityLane(sb.id, nl),
			data: make([][][]byte, nl), lpns: make([][]int64, nl), seqs: make([][]uint64, nl)}
		for i := 0; i < nl; i++ {
			stt.data[i] = make([][]byte, flash.PagesPerLWL)
			stt.lpns[i] = make([]int64, flash.PagesPerLWL)
			stt.seqs[i] = make([]uint64, flash.PagesPerLWL)
			for t := range stt.lpns[i] {
				stt.lpns[i][t] = -1
			}
		}
		f.open[core.Speed(o.Speed)] = stt
	}
	f.nextSBID = st.NextSBID
	f.writeSeq = st.WriteSeq
	f.stats = st.Stats
	if f.journal {
		f.ops = nil
	}
	return f, nil
}
