package profile

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"superfast/internal/prng"
)

// makeProfile builds a small profile with synthetic latencies for tests.
func makeProfile(lane, block int, seed uint64) *BlockProfile {
	const layers, strs = 6, 4
	src := prng.New(seed, lane, block)
	lwl := make([]float64, layers*strs)
	for i := range lwl {
		lwl[i] = 1600 + 10*math.Round(src.Normal()*3)
	}
	return NewBlockProfile(lane, block, layers, strs, lwl, 3400+src.Normal()*15, 0)
}

func TestNewBlockProfileSum(t *testing.T) {
	lwl := []float64{1, 2, 3, 4}
	p := NewBlockProfile(0, 0, 2, 2, lwl, 5, 0)
	if p.PgmSum != 10 {
		t.Fatalf("PgmSum = %v, want 10", p.PgmSum)
	}
}

func TestNewBlockProfilePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	NewBlockProfile(0, 0, 2, 2, []float64{1, 2, 3}, 0, 0)
}

func TestLWLRanksBasic(t *testing.T) {
	p := NewBlockProfile(0, 0, 1, 4, []float64{30, 10, 20, 10}, 0, 0)
	ranks := p.LWLRanks()
	want := []int{3, 0, 2, 0} // ties share the lowest rank
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("LWLRanks = %v, want %v", ranks, want)
		}
	}
}

func TestSTRRanksPerLayer(t *testing.T) {
	// 2 layers × 3 strings; layer-major indexing.
	lwl := []float64{
		5, 1, 3, // layer 0: ranks 2,0,1
		2, 2, 9, // layer 1: ranks 0,0,2
	}
	p := NewBlockProfile(0, 0, 2, 3, lwl, 0, 0)
	ranks := p.STRRanks()
	want := []int{2, 0, 1, 0, 0, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("STRRanks = %v, want %v", ranks, want)
		}
	}
}

func TestPWLRanksPerString(t *testing.T) {
	// 3 layers × 2 strings. String 0 latencies: 9,1,5 → ranks 2,0,1.
	// String 1 latencies: 4,4,2 → ranks 1,1,0.
	lwl := []float64{
		9, 4,
		1, 4,
		5, 2,
	}
	p := NewBlockProfile(0, 0, 3, 2, lwl, 0, 0)
	ranks := p.PWLRanks()
	want := []int{2, 1, 0, 1, 1, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("PWLRanks = %v, want %v", ranks, want)
		}
	}
}

func TestRankDistanceIdentity(t *testing.T) {
	p := makeProfile(0, 1, 42)
	if d := RankDistance(p.STRRanks(), p.STRRanks()); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
}

func TestRankDistanceSymmetry(t *testing.T) {
	f := func(a, b uint64) bool {
		p := makeProfile(0, 1, a)
		q := makeProfile(1, 2, b)
		return RankDistance(p.STRRanks(), q.STRRanks()) == RankDistance(q.STRRanks(), p.STRRanks())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRankDistancePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	RankDistance([]int{1}, []int{1, 2})
}

func TestEigenHalfZeroBits(t *testing.T) {
	p := makeProfile(2, 3, 7)
	e := EigenFromProfile(p)
	if e.Len() != len(p.LWL) {
		t.Fatalf("eigen length %d, want %d", e.Len(), len(p.LWL))
	}
	// Exactly half the strings per layer are marked fast (bit 0).
	ones := 0
	for i := 0; i < e.Len(); i++ {
		if e.Bit(i) {
			ones++
		}
	}
	want := p.Layers * (p.Strings - p.Strings/2)
	if ones != want {
		t.Fatalf("eigen has %d one-bits, want %d", ones, want)
	}
}

func TestEigenTieBreakSequential(t *testing.T) {
	// All strings tie: the first two must get bit 0.
	lwl := []float64{5, 5, 5, 5}
	p := NewBlockProfile(0, 0, 1, 4, lwl, 0, 0)
	e := EigenFromProfile(p)
	if e.Bit(0) || e.Bit(1) || !e.Bit(2) || !e.Bit(3) {
		t.Fatalf("tie-break wrong: %s", e)
	}
}

func TestEigenDistanceProperties(t *testing.T) {
	f := func(sa, sb uint64) bool {
		a := EigenFromProfile(makeProfile(0, 0, sa))
		b := EigenFromProfile(makeProfile(1, 1, sb))
		dab := a.Distance(b)
		return dab == b.Distance(a) && // symmetric
			a.Distance(a) == 0 && // identity
			dab >= 0 && dab <= a.Len() // bounded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenDistanceTriangle(t *testing.T) {
	f := func(sa, sb, sc uint64) bool {
		a := EigenFromProfile(makeProfile(0, 0, sa))
		b := EigenFromProfile(makeProfile(1, 1, sb))
		c := EigenFromProfile(makeProfile(2, 2, sc))
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenString(t *testing.T) {
	lwl := []float64{1, 2, 3, 4, 4, 3, 2, 1}
	p := NewBlockProfile(0, 0, 2, 4, lwl, 0, 0)
	e := EigenFromProfile(p)
	if got := e.String(); got != "0011 1100" {
		t.Fatalf("String() = %q, want \"0011 1100\"", got)
	}
}

func TestEigenSizeBytes(t *testing.T) {
	p := makeProfile(0, 0, 1)
	e := EigenFromProfile(p)
	if got, want := e.SizeBytes(), (len(p.LWL)+7)/8; got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestEigenBitPanics(t *testing.T) {
	e := EigenFromProfile(makeProfile(0, 0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range bit should panic")
		}
	}()
	e.Bit(e.Len())
}

func TestEigenDistancePanicsOnLengthMismatch(t *testing.T) {
	a := EigenFromProfile(makeProfile(0, 0, 1))
	b := EigenFromProfile(NewBlockProfile(0, 0, 1, 4, []float64{1, 2, 3, 4}, 0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	a.Distance(b)
}

func TestSortedListInsertOrder(t *testing.T) {
	var s SortedList
	s.Insert(3, 30)
	s.Insert(1, 10)
	s.Insert(2, 20)
	s.Insert(4, 10) // tie with block 1, ordered by block index
	if !s.Sorted() {
		t.Fatal("list not sorted")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.At(0).Block != 1 || s.At(1).Block != 4 || s.At(2).Block != 2 || s.At(3).Block != 3 {
		t.Fatalf("order wrong: %+v", s.entries)
	}
}

func TestSortedListHeadTail(t *testing.T) {
	var s SortedList
	for i := 0; i < 5; i++ {
		s.Insert(i, float64(i))
	}
	head := s.Head(3)
	if len(head) != 3 || head[0].Block != 0 || head[2].Block != 2 {
		t.Fatalf("Head = %+v", head)
	}
	tail := s.Tail(2)
	if len(tail) != 2 || tail[0].Block != 4 || tail[1].Block != 3 {
		t.Fatalf("Tail = %+v", tail)
	}
	if got := s.Head(99); len(got) != 5 {
		t.Fatalf("Head(99) len = %d", len(got))
	}
}

func TestSortedListRemove(t *testing.T) {
	var s SortedList
	s.Insert(1, 1)
	s.Insert(2, 2)
	if !s.Remove(1) {
		t.Fatal("Remove(1) should succeed")
	}
	if s.Remove(1) {
		t.Fatal("double remove should fail")
	}
	if s.Len() != 1 || s.At(0).Block != 2 {
		t.Fatalf("unexpected state: %+v", s.entries)
	}
}

func TestSortedListPropertySorted(t *testing.T) {
	f := func(keys []float64) bool {
		var s SortedList
		for i, k := range keys {
			if math.IsNaN(k) {
				k = 0
			}
			s.Insert(i, k)
		}
		return s.Sorted() && s.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExtraProgramManual(t *testing.T) {
	a := NewBlockProfile(0, 0, 1, 2, []float64{10, 20}, 0, 0)
	b := NewBlockProfile(1, 0, 1, 2, []float64{13, 18}, 0, 0)
	got := ExtraProgram([]*BlockProfile{a, b})
	if got != 3+2 {
		t.Fatalf("ExtraProgram = %v, want 5", got)
	}
}

func TestExtraProgramProperties(t *testing.T) {
	f := func(seeds []uint64) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 6 {
			seeds = seeds[:6]
		}
		members := make([]*BlockProfile, len(seeds))
		for i, s := range seeds {
			members[i] = makeProfile(i, i, s)
		}
		x := ExtraProgram(members)
		if x < 0 {
			return false
		}
		// A single-member superblock has no extra latency.
		if ExtraProgram(members[:1]) != 0 {
			return false
		}
		// Extra latency is monotone in membership: adding a member cannot
		// decrease the per-word-line range.
		if len(members) > 1 && ExtraProgram(members[:len(members)-1]) > x {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExtraEraseManual(t *testing.T) {
	mk := func(e float64) *BlockProfile {
		return NewBlockProfile(0, 0, 1, 1, []float64{1}, e, 0)
	}
	got := ExtraErase([]*BlockProfile{mk(3400), mk(3450), mk(3420)})
	if got != 50 {
		t.Fatalf("ExtraErase = %v, want 50", got)
	}
	if ExtraErase(nil) != 0 || ExtraProgram(nil) != 0 {
		t.Fatal("empty membership should have zero extra latency")
	}
}

func TestRanksArePermutationLike(t *testing.T) {
	p := makeProfile(0, 9, 99)
	str := p.STRRanks()
	for l := 0; l < p.Layers; l++ {
		row := str[l*p.Strings : (l+1)*p.Strings]
		sorted := append([]int(nil), row...)
		sort.Ints(sorted)
		if sorted[0] != 0 {
			t.Fatalf("layer %d: min rank %d, want 0", l, sorted[0])
		}
		for _, r := range row {
			if r < 0 || r >= p.Strings {
				t.Fatalf("layer %d: rank %d out of range", l, r)
			}
		}
	}
}

func BenchmarkEigenDistance(b *testing.B) {
	x := EigenFromProfile(makeProfile(0, 0, 1))
	y := EigenFromProfile(makeProfile(1, 1, 2))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.Distance(y)
	}
	_ = sink
}

func BenchmarkSTRRanks(b *testing.B) {
	p := makeProfile(0, 0, 3)
	for i := 0; i < b.N; i++ {
		p.STRRanks()
	}
}
