package assembly

import (
	"fmt"
	"math"

	"superfast/internal/profile"
)

// Global is the true global-optimal organization for two lanes: a min-cost
// perfect matching (Hungarian algorithm) over all block pairs, minimizing
// total superblock program latency. It exists as the upper-bound reference
// that bounds how much the paper's window-8 local search leaves on the
// table; beyond two lanes the problem is the NP-hard multidimensional
// assignment, which is exactly why the paper works with windows.
type Global struct{}

// Name implements Assembler.
func (Global) Name() string { return "GLOBAL (2-lane)" }

// Assemble implements Assembler.
func (Global) Assemble(lanes []Lane) (Result, error) {
	if err := checkLanes(lanes); err != nil {
		return Result{}, err
	}
	if len(lanes) != 2 {
		return Result{}, fmt.Errorf("assembly: global matching handles exactly 2 lanes, got %d", len(lanes))
	}
	n := len(lanes[0].Blocks)
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		a := lanes[0].Blocks[i]
		for j := 0; j < n; j++ {
			cost[i][j] = pairLatency(a, lanes[1].Blocks[j])
		}
	}
	match := hungarian(cost)
	res := Result{
		Superblocks: make([][]int, n),
		Combos:      n * n,
		PairChecks:  n * n,
	}
	for i, j := range match {
		res.Superblocks[i] = []int{i, j}
	}
	return res, nil
}

// pairLatency is the multi-plane program cost of pairing two blocks: the
// per-word-line maximum, summed.
func pairLatency(a, b *profile.BlockProfile) float64 {
	total := 0.0
	for wl := range a.LWL {
		if a.LWL[wl] > b.LWL[wl] {
			total += a.LWL[wl]
		} else {
			total += b.LWL[wl]
		}
	}
	return total
}

// hungarian solves the n×n min-cost assignment problem and returns, for each
// row, its assigned column. O(n³) shortest-augmenting-path formulation with
// row/column potentials (the Jonker-Volgenant style commonly used for dense
// matrices).
func hungarian(cost [][]float64) []int {
	n := len(cost)
	// Potentials and matching are 1-indexed internally; index 0 is the
	// virtual root of each augmenting search.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j
	way := make([]int, n+1) // way[j] = previous column on the path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 1; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	out := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
