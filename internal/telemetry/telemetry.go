// Package telemetry is the observability layer of the simulated storage
// stack: per-request span tracing on the simulated clock, exportable as
// deterministic Chrome trace-event JSON (viewable in Perfetto or
// chrome://tracing), and a streaming metrics registry — counters, gauges and
// O(1)-memory latency digests — that survives arbitrarily long runs without
// retaining per-request state.
//
// The subsystem is hook-based: the device front ends accept a Tracer and a
// *Metrics while idle and consult them with a single nil check per event, so
// a disabled sink costs one branch on the hot path
// (BenchmarkTelemetryOverhead guards this).
//
// Determinism is a design requirement, matching the rest of the repository:
// given the same admission (ticket) order, the emitted event set is
// identical regardless of how many goroutines submit, and the Chrome export
// sorts events by a total key so the JSON is byte-for-byte reproducible.
package telemetry

import "fmt"

// Track identifies one timeline row of the trace (a Chrome "thread").
// The device pipeline uses one row for host requests, one for FTL-stage
// markers, and one per flash chip.
const (
	// TrackHost is the host request timeline: one span per request from
	// arrival to completion.
	TrackHost = 0
	// TrackFTL carries FTL-stage instants: one marker per coalesced run at
	// the simulated time its mapping/GC/journal work executed.
	TrackFTL = 1
	// TrackChipBase + c is chip c's timeline: one span per flash operation
	// (read/program/erase) over the chip's busy interval.
	TrackChipBase = 16
)

// TrackChip returns the track of flash chip c.
func TrackChip(c int) int { return TrackChipBase + c }

// TrackName returns the display name of a track, used for the trace
// export's thread-name metadata.
func TrackName(track int) string {
	switch {
	case track == TrackHost:
		return "host"
	case track == TrackFTL:
		return "ftl"
	case track >= TrackChipBase:
		return fmt.Sprintf("chip %d", track-TrackChipBase)
	}
	return fmt.Sprintf("track %d", track)
}

// Event phases (the Chrome trace-event "ph" field subset the pipeline uses).
const (
	// PhaseSpan is a complete span: Ts..Ts+Dur.
	PhaseSpan = byte('X')
	// PhaseInstant is a zero-duration marker at Ts.
	PhaseInstant = byte('i')
)

// Event is one trace record on the simulated clock. All fields are plain
// values so emitting an event never allocates beyond the sink's own storage.
type Event struct {
	Ts    float64 // start, simulated µs
	Dur   float64 // duration, simulated µs (0 for instants)
	Track int     // timeline row (Track* constants)
	Ph    byte    // PhaseSpan or PhaseInstant
	GC    bool    // the work was garbage-collection-attributed
	Name  string  // span name: "read", "write", "trim", "program", "erase", "ftl-stage"
	Cat   string  // category: "host", "ftl", "flash"
	Seq   uint64  // submission ticket — the stable ordering key
	Slot  int     // position within the ticket (request slot or op index)
	LPN   int64   // logical page, -1 when not applicable
	// TraceID links the event to a cluster-wide request trace (see the hop
	// ledger in ledger.go). 0 = untraced; the Chrome export then omits it,
	// so untraced runs keep their historical bytes.
	TraceID uint64
}

// Tracer receives trace events. Implementations must be safe for concurrent
// use; the device emits from submitter goroutines and chip workers. A nil
// Tracer disables tracing — callers guard each emission with one nil check.
type Tracer interface {
	Emit(Event)
}

// OpName translates an FTL op-journal kind byte ('r', 'p', 'e') into the
// span name used on chip tracks.
func OpName(kind byte) string {
	switch kind {
	case 'r':
		return "read"
	case 'p':
		return "program"
	case 'e':
		return "erase"
	}
	return fmt.Sprintf("op-%c", kind)
}
