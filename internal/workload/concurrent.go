package workload

import (
	"sync"
	"sync/atomic"

	"superfast/internal/ssd"
)

// Collect materializes a generator's stream so it can be replayed through
// the concurrent driver (generators themselves are single-goroutine state
// machines).
func Collect(g Generator) []ssd.Request {
	var out []ssd.Request
	for {
		req, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, req)
	}
}

// RunConcurrent replays prepared requests through a thread-safe device at
// the given queue depth: up to depth goroutines keep submissions in flight
// while tickets pin the FTL admission order to the trace order, so the
// returned completions are identical for every depth ≥ 1. On error the
// remaining requests are still driven through the device (tickets must be
// consumed in order); the first error is returned.
//
// RunConcurrent materializes every completion — O(len(reqs)) memory. Long
// runs that only need aggregates should use RunConcurrentFunc with the
// device's streaming latency digest instead.
func RunConcurrent(dev *ssd.ConcurrentDevice, reqs []ssd.Request, depth int) ([]ssd.Completion, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]ssd.Completion, len(reqs))
	if err := RunConcurrentFunc(dev, reqs, depth, func(i int, c ssd.Completion) {
		out[i] = c
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// RunConcurrentFunc is the streaming form of RunConcurrent: instead of
// materializing a completion slice it hands each completion to fn as it
// finishes. fn may be nil (drive the trace for its side effects only); when
// set it is called concurrently from the submitter goroutines — exactly once
// per successful request, with that request's index — so it must be safe for
// concurrent use unless each index touches disjoint state.
func RunConcurrentFunc(dev *ssd.ConcurrentDevice, reqs []ssd.Request, depth int, fn func(i int, c ssd.Completion)) error {
	if len(reqs) == 0 {
		return nil
	}
	if depth < 1 {
		depth = 1
	}
	if depth > len(reqs) {
		depth = len(reqs)
	}
	first := dev.ReserveBatch(len(reqs))
	var next int64 = -1
	var errOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(reqs)) {
					return
				}
				c, err := dev.SubmitTicket(first+uint64(i), reqs[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				if fn != nil {
					fn(int(i), c)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// PrepareForReplay returns reqs with a priming write inserted before the
// first read of any LPN the trace never wrote earlier, so a replay on a
// fresh device cannot fail with an unmapped read. The priming writes carry
// the arrival time of the read they unblock. The second return value maps
// each original request to its position in the prepared slice, so callers
// can report trace-only completions.
func PrepareForReplay(reqs []ssd.Request) ([]ssd.Request, []int) {
	seen := make(map[int64]bool)
	out := make([]ssd.Request, 0, len(reqs))
	idx := make([]int, len(reqs))
	for i, req := range reqs {
		switch req.Kind {
		case ssd.OpWrite:
			seen[req.LPN] = true
		case ssd.OpRead:
			if !seen[req.LPN] {
				out = append(out, ssd.Request{
					Kind: ssd.OpWrite, LPN: req.LPN, Data: fill(req.LPN, 16), Arrival: req.Arrival,
				})
				seen[req.LPN] = true
			}
		}
		idx[i] = len(out)
		out = append(out, req)
	}
	return out, idx
}
