package client

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/server"
	"superfast/internal/ssd"
	"superfast/internal/telemetry"
)

// startServer spins a real block service on a loopback listener.
func startServer(t testing.TB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	dcfg := ssd.DefaultConfig()
	dcfg.FTL.Overprovision = 0.25
	dev, err := ssd.NewConcurrent(arr, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Close)
	srv := server.New(dev, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialTest(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientSugar(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	data := []byte("client page payload")
	wr, err := c.Write(3, data, ftl.HintSmall)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if wr.Status != server.StatusOK {
		t.Fatalf("write status %v", wr.Status)
	}
	rd, err := c.Read(3)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(string(rd.Payload), string(data)) {
		t.Fatalf("read %q, want prefix %q", rd.Payload, data)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := c.Trim(3); err != nil {
		t.Fatalf("trim: %v", err)
	}
	// The trimmed page now reads as BAD_REQUEST, surfaced through the error.
	if _, err := c.Read(3); err == nil || !strings.Contains(err.Error(), "BAD_REQUEST") {
		t.Fatalf("read after trim: %v", err)
	}

	snap, err := c.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if snap.Capacity <= 0 || snap.PageSize <= 0 {
		t.Fatalf("stat snapshot %+v", snap)
	}
	// The failed post-trim read never reached the flash, so only the
	// successful one counts.
	if snap.Device.Writes != 1 || snap.Device.Reads != 1 || snap.Device.Trims != 1 {
		t.Fatalf("device counters %+v", snap.Device)
	}
	if snap.Server.Conns != 1 {
		t.Fatalf("server counters %+v", snap.Server)
	}
}

func TestClientPipelining(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)

	const n = 64
	calls := make([]*Call, n)
	for i := 0; i < n; i++ {
		call, err := c.Start(server.Frame{Op: server.OpWrite, LPN: int64(i % 16), Payload: []byte("pipelined")})
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		calls[i] = call
	}
	for i, call := range calls {
		r, err := call.Wait()
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if r.Status != server.StatusOK {
			t.Fatalf("call %d: %v", i, r.Status)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("healthy connection reports %v", err)
	}
}

func TestClientClose(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Err(); err == nil {
		t.Fatal("closed client should report an error")
	}
	if _, err := c.Start(server.Frame{Op: server.OpPing}); err == nil {
		t.Fatal("start after close should fail")
	}
	if err := c.Close(); err == nil {
		// Double close surfaces the net.Conn error; both outcomes are fine,
		// it just must not panic or hang.
		t.Log("double close returned nil")
	}
}

func TestClientServerGone(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The connection is gone; calls must fail promptly, not hang.
	if _, err := c.Do(server.Frame{Op: server.OpPing}); err == nil {
		t.Fatal("call against a drained server should fail")
	}
}

func TestClientBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port should fail")
	}
}

// TestClientConnLostFailsInFlight is the reconnect/error-surfacing
// regression test: a backend that dies with a pipeline of unanswered
// requests must fail every in-flight call promptly with an error wrapping
// ErrConnLost — none may hang, and later Starts must fail the same way.
func TestClientConnLostFailsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srvConn := <-accepted

	// Fill a pipeline the server will never answer.
	const inFlight = 32
	calls := make([]*Call, inFlight)
	for i := range calls {
		if calls[i], err = c.Start(server.Frame{Op: server.OpWrite, LPN: int64(i), Payload: []byte("doomed")}); err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
	}

	// The backend dies mid-pipeline.
	srvConn.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, call := range calls {
			_, err := call.Wait()
			if err == nil {
				t.Errorf("call %d: resolved without error on a dead connection", i)
				continue
			}
			if !errors.Is(err, ErrConnLost) {
				t.Errorf("call %d: error %v does not wrap ErrConnLost", i, err)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight calls hung after the connection died")
	}

	if err := c.Err(); !errors.Is(err, ErrConnLost) {
		t.Fatalf("Err() = %v, want ErrConnLost", err)
	}
	if _, err := c.Start(server.Frame{Op: server.OpPing}); !errors.Is(err, ErrConnLost) {
		t.Fatalf("Start after loss = %v, want ErrConnLost", err)
	}
}

// TestClientCloseIsTyped: calls interrupted by a local Close surface
// ErrClosed, distinguishable from a lost connection.
func TestClientCloseIsTyped(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Err() after close = %v, want ErrClosed", err)
	}
	if errors.Is(c.Err(), ErrConnLost) {
		t.Fatal("local close must not read as a lost connection")
	}
}

// TestClientOversizedFrameNotTerminal: an unencodable frame fails only its
// own call — the connection stays healthy for the pipeline behind it.
func TestClientOversizedFrameNotTerminal(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)
	if _, err := c.Start(server.Frame{
		Op: server.OpWrite, LPN: 1, Payload: make([]byte, server.MaxPayload+1),
	}); err == nil {
		t.Fatal("oversized frame should fail")
	} else if errors.Is(err, ErrConnLost) {
		t.Fatalf("encoding error marked terminal: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection unusable after encoding error: %v", err)
	}
}

// TestClientHelloAndTraceLedger: Hello surfaces the server's capability
// tokens, SupportsTrace keys off TraceCap, and a wired ledger records one
// wall-only HopClient entry per traced frame — and nothing for untraced ones.
func TestClientHelloAndTraceLedger(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)

	caps, err := c.Hello()
	if err != nil {
		t.Fatalf("hello: %v", err)
	}
	found := false
	for _, tok := range caps {
		if tok == server.TraceCap {
			found = true
		}
	}
	if !found {
		t.Fatalf("capabilities %v lack %q", caps, server.TraceCap)
	}
	if ok, err := c.SupportsTrace(); err != nil || !ok {
		t.Fatalf("SupportsTrace: %v %v", ok, err)
	}

	led := telemetry.NewLedger("ftlload")
	c.SetLedger(led)
	if r, err := c.Write(4, []byte("untraced"), ftl.HintNone); err != nil || r.Status != server.StatusOK {
		t.Fatalf("untraced write: %v %v", err, r.Status)
	}
	if led.Len() != 0 {
		t.Fatalf("untraced frame recorded %d entries", led.Len())
	}
	r, err := c.Do(server.Frame{
		Op: server.OpRead, LPN: 4, Flags: server.FlagTrace,
		Trace: 9, ParentHop: telemetry.HopClient,
	})
	if err != nil || r.Status != server.StatusOK {
		t.Fatalf("traced read: %v %v", err, r.Status)
	}
	recs := led.Records()
	if len(recs) != 1 {
		t.Fatalf("traced frame recorded %d entries, want 1", len(recs))
	}
	hr := recs[0]
	if hr.Hop != telemetry.HopClient || hr.Parent != telemetry.HopNone ||
		hr.Trace != 9 || hr.LPN != 4 || hr.SimTS != -1 || hr.WallNS < 0 || hr.Proc != "ftlload" {
		t.Fatalf("client hop record %+v", hr)
	}
}
