package ftl

import (
	"errors"
	"math"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/prng"
	"superfast/internal/telemetry"
)

func TestGCStepConfigValidation(t *testing.T) {
	arr := testArray(t)
	bad := testConfig()
	bad.GCStepPages = -1
	if _, err := New(arr, bad); err == nil {
		t.Fatal("negative GCStepPages accepted")
	}
	bad = testConfig()
	bad.GCSoftThreshold = bad.GCThreshold - 1
	if _, err := New(arr, bad); err == nil {
		t.Fatal("soft threshold below hard threshold accepted")
	}
	cfg := testConfig()
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.softGC != cfg.GCThreshold {
		t.Fatalf("soft watermark defaulted to %d, want %d", f.softGC, cfg.GCThreshold)
	}
}

// stepChurn drives the preemptive-GC FTL the way a device front end does:
// one bounded GC step after every host write.
func stepChurn(t *testing.T, f *FTL, churn float64, seed uint64) map[int64]int {
	t.Helper()
	budget := f.cfg.GCStepPages
	gen := make(map[int64]int)
	write := func(lpn int64) {
		if _, err := f.Write(lpn, payload(lpn, gen[lpn])); err != nil {
			t.Fatalf("write lpn %d: %v", lpn, err)
		}
		// An idle-rich host: step until GC has caught up with the watermark.
		for f.GCNeeded() {
			res, err := f.GCStep(budget)
			if err != nil {
				t.Fatalf("gc step: %v", err)
			}
			if res.Moves > budget {
				t.Fatalf("step relocated %d pages, budget %d", res.Moves, budget)
			}
			if res.Erased && res.Moves != 0 {
				t.Fatalf("erase step also relocated %d pages; the erase must be its own step", res.Moves)
			}
			if res.Idle {
				break
			}
		}
	}
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		write(lpn)
		gen[lpn] = 0
	}
	src := prng.New(seed, 0xc4)
	n := int(float64(f.Capacity()) * churn)
	for i := 0; i < n; i++ {
		lpn := int64(src.Intn(int(f.Capacity())))
		gen[lpn]++
		write(lpn)
	}
	return gen
}

func TestPreemptiveGCStepsPreserveData(t *testing.T) {
	cfg := testConfig()
	cfg.GCStepPages = 4
	f := newFTL(t, cfg)
	gen := stepChurn(t, f, 1.5, 42)
	st := f.Stats()
	if st.GCSteps == 0 {
		t.Fatal("workload should have taken preemptive GC steps")
	}
	if st.GCStalls != 0 {
		t.Fatalf("stepping kept pace yet %d blocking stalls were forced", st.GCStalls)
	}
	if _, err := f.DrainGC(); err != nil {
		t.Fatal(err)
	}
	if d := f.GCDebt(); d != 0 {
		t.Fatalf("GC debt %d after drain, want 0", d)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	src := prng.New(99)
	for i := 0; i < 200; i++ {
		lpn := int64(src.Intn(int(f.Capacity())))
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d: got %q, want gen %d", lpn, r.Data, gen[lpn])
		}
	}
}

func TestPreemptiveGCMatchesBlockingWAF(t *testing.T) {
	blocking := newFTL(t, testConfig())
	fillAndChurn(t, blocking, 1.5, 42)

	cfg := testConfig()
	cfg.GCStepPages = 4
	stepped := newFTL(t, cfg)
	stepChurn(t, stepped, 1.5, 42)
	if _, err := stepped.DrainGC(); err != nil {
		t.Fatal(err)
	}

	bw, sw := blocking.Stats().WAF(), stepped.Stats().WAF()
	if math.Abs(bw-sw)/bw > 0.01 {
		t.Fatalf("steady-state WAF drifted: blocking %.4f vs preemptive %.4f", bw, sw)
	}
}

func TestGCStepIdleAboveSoftWatermark(t *testing.T) {
	cfg := testConfig()
	cfg.GCStepPages = 4
	f := newFTL(t, cfg)
	res, err := f.GCStep(cfg.GCStepPages)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Idle || res.Moves != 0 || res.Latency != 0 {
		t.Fatalf("fresh device should be GC-idle, got %+v", res)
	}
	if f.GCNeeded() {
		t.Fatal("fresh device reports GC needed")
	}
}

// TestCollectErrorLeavesResumableState is the regression test for the
// orphaned-victim bug: a read failure mid-collection used to leave the
// victim outside both the superblock table and the free pool, with no way
// to retry. The cursor must keep the victim reachable and resumable.
func TestCollectErrorLeavesResumableState(t *testing.T) {
	f := newFTL(t, testConfig())
	fillAndChurn(t, f, 0.6, 7)
	victim := f.pickVictim()
	if victim == nil {
		t.Fatal("no GC victim after churn")
	}
	// Corrupt the first still-mapped page the collection scan will visit.
	target := int64(-1)
	var page flash.PageAddr
scan:
	for _, m := range victim.members {
		base := f.ppn(m, 0, 0)
		for i := 0; i < f.geo.PagesPerBlock(); i++ {
			if lpn := f.p2l[base+int64(i)]; lpn >= 0 {
				addr, lwl, typ := f.ppnLocate(base + int64(i))
				page = flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: typ}
				target = lpn
				break scan
			}
		}
	}
	if target < 0 {
		t.Fatal("victim has no mapped pages")
	}
	if err := f.arr.InjectCorruption(page); err != nil {
		t.Fatal(err)
	}

	st := f.pushVictim(victim)
	_, _, _, err := f.gcAdvance(st, 0)
	if err == nil {
		t.Fatal("collection over a corrupted page should fail")
	}
	if !errors.Is(err, flash.ErrUncorrectable) {
		t.Fatalf("error should wrap ErrUncorrectable, got %v", err)
	}
	// The victim must be neither orphaned nor inconsistent: still tracked by
	// the cursor, members still in bySB, mapping invariants intact.
	if f.GCDebt() == 0 {
		t.Fatal("failed collection left no resumable GC debt")
	}
	for _, m := range victim.members {
		if f.bySB[m] != victim {
			t.Fatalf("member %v lost its superblock binding mid-collection", m)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The host overwrites the unreadable page (invalidating it), and the
	// collection resumes from the cursor to completion. The overwrite's own
	// flush may resume it inline — either path must reclaim the victim.
	erasesBefore := f.Stats().Erases
	if _, err := f.Write(target, payload(target, 1000)); err != nil {
		t.Fatalf("overwrite of corrupted lpn: %v", err)
	}
	if _, err := f.DrainGC(); err != nil {
		t.Fatalf("resumed collection: %v", err)
	}
	if f.GCDebt() != 0 {
		t.Fatal("GC debt remains after resumed collection")
	}
	if f.Stats().Erases <= erasesBefore {
		t.Fatal("resumed collection never erased the victim")
	}
	for _, m := range victim.members {
		if f.bySB[m] == victim {
			t.Fatalf("member %v still bound to the reclaimed victim", m)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	r, err := f.Read(target)
	if err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	if string(r.Data) != string(payload(target, 1000)) {
		t.Fatalf("lpn %d lost its overwrite across the failed collection", target)
	}
}

// TestGCStarvationCounted is the regression test for silent GC starvation:
// a device whose sealed superblocks are all 100% valid has nothing to
// reclaim, and used to degrade without any signal.
func TestGCStarvationCounted(t *testing.T) {
	cfg := testConfig()
	cfg.Overprovision = 0 // every page written once → all superblocks fully valid
	f := newFTL(t, cfg)
	m := telemetry.New()
	f.SetMetrics(m)
	var lastErr error
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil || !errors.Is(lastErr, ErrDeviceFull) {
		t.Fatalf("zero-overprovision fill should exhaust the device, got %v", lastErr)
	}
	st := f.Stats()
	if st.GCStarved == 0 {
		t.Fatal("GC starvation went uncounted")
	}
	if st.GCRuns != 0 {
		t.Fatalf("no victim existed yet %d GC runs were counted", st.GCRuns)
	}
	found := false
	for _, v := range m.Snapshot() {
		if v.Name == "ftl.gc.starved" {
			found = true
			if uint64(v.Value) != st.GCStarved {
				t.Fatalf("gauge ftl.gc.starved = %v, stats say %d", v.Value, st.GCStarved)
			}
		}
	}
	if !found {
		t.Fatal("ftl.gc.starved gauge not registered")
	}
}

func TestWriteResultSplitsGCLatency(t *testing.T) {
	f := newFTL(t, testConfig())
	sawGC := false
	gen := make(map[int64]int)
	src := prng.New(11, 0x5e)
	for i := 0; i < int(f.Capacity())*5/2; i++ {
		var lpn int64
		if i < int(f.Capacity()) {
			lpn = int64(i)
		} else {
			lpn = int64(src.Intn(int(f.Capacity())))
		}
		gen[lpn]++
		res, err := f.Write(lpn, payload(lpn, gen[lpn]))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Latency-(res.HostLatency+res.GCLatency)) > 1e-9 {
			t.Fatalf("latency split broken: total %v != host %v + gc %v",
				res.Latency, res.HostLatency, res.GCLatency)
		}
		if res.GCLatency > 0 {
			if !res.Flushed {
				t.Fatal("blocking GC latency on a write that did not flush")
			}
			sawGC = true
		}
	}
	if !sawGC {
		t.Fatal("churn never charged GC latency to a write")
	}
	if f.Stats().GCLatency <= 0 {
		t.Fatal("Stats.GCLatency not accumulated")
	}
}

func TestCheckpointDrainsPendingGC(t *testing.T) {
	arr := testArray(t)
	cfg := testConfig()
	cfg.GCStepPages = 2
	f, err := New(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := stepChurn(t, f, 1.0, 13)
	// Leave a collection half-done, then checkpoint mid-flight.
	for f.GCDebt() == 0 {
		res, err := f.GCStep(1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Idle {
			gen[0]++
			if _, err := f.Write(0, payload(0, gen[0])); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if f.GCDebt() != 0 {
		t.Fatal("checkpoint left GC debt behind")
	}
	g, err := Restore(arr, cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	src := prng.New(5)
	for i := 0; i < 100; i++ {
		lpn := int64(src.Intn(int(g.Capacity())))
		r, err := g.Read(lpn)
		if err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted across mid-GC power cycle", lpn)
		}
	}
}
