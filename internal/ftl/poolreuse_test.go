package ftl

import (
	"bytes"
	"encoding/binary"
	"testing"

	"superfast/internal/prng"
)

// fixedPayload encodes (lpn, gen) into a fixed-width page payload. The pool
// tests use it instead of the variable-width payload() helper so every
// recycled buffer fits every write: takePayload drops wrong-sized strays,
// which would make pool depths drift for reasons unrelated to recycling.
func fixedPayload(lpn int64, gen int) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(lpn))
	binary.LittleEndian.PutUint64(b[8:], uint64(gen))
	return b
}

// churnFixed overwrites random LPNs n times with fixed-width payloads,
// invoking probe (when non-nil) after every write. It returns the latest
// generation per LPN.
func churnFixed(t *testing.T, f *FTL, n int, seed uint64, gen map[int64]int, probe func()) {
	t.Helper()
	src := prng.New(seed, 0x9001)
	cap := int(f.Capacity())
	for i := 0; i < n; i++ {
		lpn := int64(src.Intn(cap))
		gen[lpn]++
		if _, err := f.Write(lpn, fixedPayload(lpn, gen[lpn])); err != nil {
			t.Fatalf("churn write lpn %d: %v", lpn, err)
		}
		if probe != nil {
			probe()
		}
	}
}

// TestPoolsRecycledUnderChurn drives the CopyRecycle FTL through many P/E
// cycles and asserts the arena actually recycles: the payload, tag,
// open-state, superblock and GC-cursor pools reach a steady-state depth in
// the first churn phase and do not keep growing through a second equal
// phase — the structures handed back at erase/seal/completion are the ones
// the next operations consume, not dead weight next to fresh allocations.
func TestPoolsRecycledUnderChurn(t *testing.T) {
	f := newFTL(t, testConfig())
	f.SetPayloadOwnership(CopyRecycle)

	gen := make(map[int64]int)
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		if _, err := f.Write(lpn, fixedPayload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}

	// Pool depths oscillate (erases refill in bulk, writes drain one at a
	// time), so compare sawtooth peaks, not instantaneous depths.
	peak := func() map[string]int {
		m := map[string]int{}
		probe := func() {
			for name, n := range map[string]int{
				"bufPool":   len(f.bufPool),
				"tagPool":   len(f.tagPool),
				"statePool": len(f.statePool),
				"sbPool":    len(f.sbPool),
				"gcPool":    len(f.gcPool),
			} {
				if n > m[name] {
					m[name] = n
				}
			}
		}
		churnFixed(t, f, 2*int(f.Capacity()), 7, gen, probe)
		return m
	}
	first := peak()
	second := peak()

	// One slab of refill slack per buffer pool: a refill that lands just
	// before a bulk erase returns can raise the peak by a slab once, but a
	// leak grows the peak with every phase.
	slack := map[string]int{"bufPool": payloadSlab, "tagPool": tagSlab, "statePool": 1, "sbPool": 1, "gcPool": 1}
	for name, p2 := range second {
		if p1 := first[name]; p2 > p1+slack[name] {
			t.Errorf("%s peak grew across equal churn phases: %d -> %d (slack %d) — pooled structures are not being recycled",
				name, p1, p2, slack[name])
		}
	}
	if first["bufPool"] == 0 || first["tagPool"] == 0 {
		t.Errorf("buffer pools never filled (bufPool peak %d, tagPool peak %d); erase recycling is not wired",
			first["bufPool"], first["tagPool"])
	}

	// Every pooled buffer must be a distinct allocation, and none may alias
	// a live page: recycle runs at erase time, when the block's pages are
	// all invalid, so a pooled buffer reachable through Read means a future
	// write would scribble over live data.
	pooled := make(map[*byte]string)
	for _, b := range f.bufPool {
		if b == nil || len(b) == 0 {
			t.Fatal("nil or empty buffer in bufPool")
		}
		if prev, dup := pooled[&b[0]]; dup {
			t.Fatalf("bufPool entry aliases %s", prev)
		}
		pooled[&b[0]] = "another bufPool entry"
	}
	for _, b := range f.tagPool {
		if prev, dup := pooled[&b[0]]; dup {
			t.Fatalf("tagPool entry aliases %s", prev)
		}
		pooled[&b[0]] = "another tagPool entry"
	}
	for lpn := int64(0); lpn < f.Capacity(); lpn++ {
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if !bytes.Equal(r.Data, fixedPayload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted after churn: got %x", lpn, r.Data)
		}
		if len(r.Data) > 0 {
			if _, dead := pooled[&r.Data[0]]; dead {
				t.Fatalf("live data for lpn %d aliases a pooled (erased) buffer", lpn)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBorrowHostPayloadsNeverRecycled pins the BorrowHost contract across
// erases: the FTL stores the caller's slice directly, so those slices must
// never enter the payload pool (a recycled borrowed buffer would be handed
// out as scratch while the host still owns it), must never be written to by
// the FTL, and must stop being referenced the moment the host overwrites
// the LPN — scribbling over a dead borrowed buffer cannot corrupt any live
// page, even after GC has relocated and erased everything around it.
func TestBorrowHostPayloadsNeverRecycled(t *testing.T) {
	f := newFTL(t, testConfig())
	f.SetPayloadOwnership(BorrowHost)

	capacity := f.Capacity()
	live := make([][]byte, capacity) // the slice the FTL currently borrows per LPN
	gen := make(map[int64]int)
	write := func(lpn int64) {
		buf := fixedPayload(lpn, gen[lpn])
		old := live[lpn]
		live[lpn] = buf
		if _, err := f.Write(lpn, buf); err != nil {
			t.Fatalf("write lpn %d: %v", lpn, err)
		}
		// The previous borrowed buffer is dead now. Poison it: if the FTL
		// still references it anywhere (mapping, GC relocation source,
		// recycled scratch), some later read will surface the poison.
		for i := range old {
			old[i] = 0xFF
		}
	}
	for lpn := int64(0); lpn < capacity; lpn++ {
		write(lpn)
	}
	src := prng.New(11, 0x9002)
	for i := 0; i < 4*int(capacity); i++ {
		lpn := int64(src.Intn(int(capacity)))
		gen[lpn]++
		write(lpn)
	}

	// Churn forced plenty of erases (every erase recycles tag buffers), yet
	// borrowed payloads must not have entered the pool.
	if len(f.bufPool) != 0 {
		t.Errorf("BorrowHost recycled %d payload buffers into bufPool; borrowed slices are host-owned", len(f.bufPool))
	}
	if len(f.tagPool) == 0 {
		t.Error("no tag buffers recycled under BorrowHost churn; tags are FTL-owned and should circulate")
	}
	if f.stats.Erases == 0 {
		t.Fatal("churn produced no erases; the test exercised nothing")
	}

	for lpn := int64(0); lpn < capacity; lpn++ {
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if !bytes.Equal(r.Data, fixedPayload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted: got %x, want gen %d — a dead borrowed buffer leaked into live data",
				lpn, r.Data, gen[lpn])
		}
		if !bytes.Equal(live[lpn], fixedPayload(lpn, gen[lpn])) {
			t.Fatalf("FTL mutated the host's borrowed buffer for lpn %d: %x", lpn, live[lpn])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
