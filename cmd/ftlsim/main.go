// Command ftlsim runs a host workload through the full simulated SSD (flash
// array + FTL + device queue) and prints latency/WAF statistics. It is the
// end-to-end harness for comparing superblock organizers.
//
// Usage:
//
//	ftlsim -organizer qstr-med -workload hotcold -ops 20000
//	ftlsim -organizer random -workload uniform
//	ftlsim -workload trace -trace ops.csv
//	ftlsim -workload mixed -workers 8
//
// With -workers N (N > 1) the workload is materialized and replayed through
// the thread-safe multi-queue front end by N concurrent submitters; tickets
// pin the trace order, so the results match a single-submitter run.
package main

import (
	"flag"
	"fmt"
	"os"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/ssd"
	"superfast/internal/stats"
	"superfast/internal/workload"
)

func main() {
	var (
		orgName  = flag.String("organizer", "qstr-med", "superblock organizer: qstr-med | sequential | random")
		wlName   = flag.String("workload", "hotcold", "workload: seqfill | uniform | hotcold | mixed | trace | msr")
		ops      = flag.Int64("ops", 0, "operation count (0 = one logical-space pass)")
		tracePth = flag.String("trace", "", "trace file for -workload trace")
		blocks   = flag.Int("blocks", 32, "blocks per plane")
		chips    = flag.Int("chips", 4, "chips")
		layers   = flag.Int("layers", 48, "word-line layers per block")
		seed     = flag.Uint64("seed", 1, "seed")
		raid     = flag.Bool("raid", false, "dedicate one lane per superblock to parity")
		autoHint = flag.Bool("autohint", false, "detect hot pages and place them on fast superpages")
		victim   = flag.String("victim", "greedy", "GC victim policy: greedy | cost-benefit | fifo")
		queue    = flag.String("queue", "serialized", "device queue model: serialized | per-chip")
		workers  = flag.Int("workers", 1, "concurrent submitters (>1 drives the thread-safe multi-queue front end)")
	)
	flag.Parse()

	g := flash.Geometry{
		Chips:          *chips,
		PlanesPerChip:  1,
		BlocksPerPlane: *blocks,
		Layers:         *layers,
		Strings:        4,
		PageSize:       16 * 1024,
		SpareSize:      2 * 1024,
	}
	p := pv.DefaultParams()
	p.Seed = *seed
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr, err := flash.NewArray(g, pv.New(p), flash.DefaultECC())
	if err != nil {
		fatalf("%v", err)
	}
	cfg := ssd.DefaultConfig()
	cfg.FTL.Overprovision = 0.2
	cfg.FTL.Seed = *seed
	switch *orgName {
	case "qstr-med":
		cfg.FTL.Organizer = ftl.QSTRMed
	case "sequential":
		cfg.FTL.Organizer = ftl.SequentialOrg
	case "random":
		cfg.FTL.Organizer = ftl.RandomOrg
	default:
		fatalf("unknown organizer %q", *orgName)
	}
	cfg.FTL.RAID = *raid
	cfg.FTL.AutoHint = *autoHint
	switch *victim {
	case "greedy":
		cfg.FTL.Victim = ftl.Greedy
	case "cost-benefit":
		cfg.FTL.Victim = ftl.CostBenefit
	case "fifo":
		cfg.FTL.Victim = ftl.FIFO
	default:
		fatalf("unknown victim policy %q", *victim)
	}
	switch *queue {
	case "serialized":
		cfg.Queue = ssd.Serialized
	case "per-chip":
		cfg.Queue = ssd.PerChip
	default:
		fatalf("unknown queue model %q", *queue)
	}
	if *workers < 1 {
		fatalf("-workers must be at least 1, got %d", *workers)
	}

	var dev *ssd.Device
	var cdev *ssd.ConcurrentDevice
	var f *ftl.FTL
	if *workers > 1 {
		cdev, err = ssd.NewConcurrent(arr, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		defer cdev.Close()
		f = cdev.FTL()
	} else {
		dev, err = ssd.New(arr, cfg)
		if err != nil {
			fatalf("%v", err)
		}
		f = dev.FTL()
	}
	capacity := f.Capacity()
	count := *ops
	if count == 0 {
		count = capacity
	}
	warm := func() {
		var werr error
		if cdev != nil {
			werr = cdev.FillSequential(nil)
		} else {
			werr = dev.FillSequential(nil)
		}
		if werr != nil {
			fatalf("warm: %v", werr)
		}
	}

	// Materialize the request stream (and its index map, when trace priming
	// inserts extra writes whose completions should not be reported).
	var reqs []ssd.Request
	var keep []int
	switch *wlName {
	case "seqfill":
		reqs = workload.Collect(&workload.Sequential{N: min64(count, capacity), PageLen: 64})
	case "uniform":
		warm()
		reqs = workload.Collect(&workload.Uniform{Space: capacity, Count: count, PageLen: 64, Seed: *seed})
	case "hotcold":
		warm()
		reqs = workload.Collect(&workload.HotCold{
			Space: capacity, Count: count, HotFrac: 0.8, HotSpace: 0.2, PageLen: 64, Seed: *seed,
		})
	case "mixed":
		warm()
		reqs = workload.Collect(&workload.Mixed{
			Space: capacity, Count: count, ReadFrac: 0.5, PageLen: 64, Seed: *seed,
		})
	case "trace":
		reqs, err = parseTraceFile(*tracePth, func(r *os.File) ([]ssd.Request, error) {
			return workload.ParseTrace(r, 64)
		})
		if err != nil {
			fatalf("%v", err)
		}
	case "msr":
		reqs, err = parseTraceFile(*tracePth, func(r *os.File) ([]ssd.Request, error) {
			return workload.ParseMSRTrace(r, g.PageSize, capacity)
		})
		if err != nil {
			fatalf("%v", err)
		}
		reqs, keep = workload.PrepareForReplay(reqs)
	default:
		fatalf("unknown workload %q", *wlName)
	}

	var completions []ssd.Completion
	if cdev != nil {
		completions, err = workload.RunConcurrent(cdev, reqs, *workers)
	} else {
		for i, req := range reqs {
			c, serr := dev.Submit(req)
			if serr != nil {
				err = fmt.Errorf("op %d: %w", i, serr)
				break
			}
			completions = append(completions, c)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	if keep != nil {
		trace := make([]ssd.Completion, len(keep))
		for i, j := range keep {
			trace[i] = completions[j]
		}
		completions = trace
	}

	lats := make([]float64, len(completions))
	for i, c := range completions {
		lats[i] = c.Service
	}
	sm := stats.Summarize(lats)
	fst := f.Stats()
	t := stats.Table{Title: fmt.Sprintf("ftlsim: %s / %s, %d ops", *orgName, *wlName, len(completions))}
	t.Headers = []string{"Metric", "Value"}
	t.AddRow("mean latency", stats.FmtUS(sm.Mean)+" µs")
	t.AddRow("median latency", stats.FmtUS(sm.Median)+" µs")
	t.AddRow("p95 latency", stats.FmtUS(sm.P95)+" µs")
	t.AddRow("p99 latency", stats.FmtUS(sm.P99)+" µs")
	t.AddRow("max latency", stats.FmtUS(sm.Max)+" µs")
	t.AddRow("host writes", fmt.Sprintf("%d", fst.HostWrites))
	t.AddRow("gc writes", fmt.Sprintf("%d", fst.GCWrites))
	t.AddRow("WAF", fmt.Sprintf("%.3f", fst.WAF()))
	t.AddRow("superblock flushes", fmt.Sprintf("%d", fst.Flushes))
	t.AddRow("extra PGM per flush", stats.FmtUS(safeDiv(fst.ExtraPgm, float64(fst.Flushes)))+" µs")
	t.AddRow("extra ERS per erase", stats.FmtUS(safeDiv(fst.ExtraErs, float64(fst.Erases)))+" µs")
	t.AddRow("similarity checks", fmt.Sprintf("%d", f.Scheme().PairChecks()))
	if *raid {
		t.AddRow("raid repairs", fmt.Sprintf("%d", fst.RAIDRepairs))
	}
	w := f.Wear()
	t.AddRow("wear (min/mean/max P/E)", fmt.Sprintf("%d / %.1f / %d", w.MinPE, w.MeanPE, w.MaxPE))
	fmt.Print(t.String())
}

// parseTraceFile opens path and parses it with the given reader.
func parseTraceFile(path string, parse func(*os.File) ([]ssd.Request, error)) ([]ssd.Request, error) {
	if path == "" {
		return nil, fmt.Errorf("workload needs -trace FILE")
	}
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return parse(r)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ftlsim: "+format+"\n", args...)
	os.Exit(1)
}
