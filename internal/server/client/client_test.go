package client

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"superfast/internal/flash"
	"superfast/internal/ftl"
	"superfast/internal/pv"
	"superfast/internal/server"
	"superfast/internal/ssd"
)

// startServer spins a real block service on a loopback listener.
func startServer(t testing.TB, cfg server.Config) (*server.Server, string) {
	t.Helper()
	g := flash.TestGeometry()
	g.BlocksPerPlane = 12
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	dcfg := ssd.DefaultConfig()
	dcfg.FTL.Overprovision = 0.25
	dev, err := ssd.NewConcurrent(arr, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dev.Close)
	srv := server.New(dev, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialTest(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientSugar(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	data := []byte("client page payload")
	wr, err := c.Write(3, data, ftl.HintSmall)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if wr.Status != server.StatusOK {
		t.Fatalf("write status %v", wr.Status)
	}
	rd, err := c.Read(3)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(string(rd.Payload), string(data)) {
		t.Fatalf("read %q, want prefix %q", rd.Payload, data)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := c.Trim(3); err != nil {
		t.Fatalf("trim: %v", err)
	}
	// The trimmed page now reads as BAD_REQUEST, surfaced through the error.
	if _, err := c.Read(3); err == nil || !strings.Contains(err.Error(), "BAD_REQUEST") {
		t.Fatalf("read after trim: %v", err)
	}

	snap, err := c.Stat()
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if snap.Capacity <= 0 || snap.PageSize <= 0 {
		t.Fatalf("stat snapshot %+v", snap)
	}
	// The failed post-trim read never reached the flash, so only the
	// successful one counts.
	if snap.Device.Writes != 1 || snap.Device.Reads != 1 || snap.Device.Trims != 1 {
		t.Fatalf("device counters %+v", snap.Device)
	}
	if snap.Server.Conns != 1 {
		t.Fatalf("server counters %+v", snap.Server)
	}
}

func TestClientPipelining(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)

	const n = 64
	calls := make([]*Call, n)
	for i := 0; i < n; i++ {
		call, err := c.Start(server.Frame{Op: server.OpWrite, LPN: int64(i % 16), Payload: []byte("pipelined")})
		if err != nil {
			t.Fatalf("start %d: %v", i, err)
		}
		calls[i] = call
	}
	for i, call := range calls {
		r, err := call.Wait()
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if r.Status != server.StatusOK {
			t.Fatalf("call %d: %v", i, r.Status)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("healthy connection reports %v", err)
	}
}

func TestClientClose(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Err(); err == nil {
		t.Fatal("closed client should report an error")
	}
	if _, err := c.Start(server.Frame{Op: server.OpPing}); err == nil {
		t.Fatal("start after close should fail")
	}
	if err := c.Close(); err == nil {
		// Double close surfaces the net.Conn error; both outcomes are fine,
		// it just must not panic or hang.
		t.Log("double close returned nil")
	}
}

func TestClientServerGone(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c := dialTest(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The connection is gone; calls must fail promptly, not hang.
	if _, err := c.Do(server.Frame{Op: server.OpPing}); err == nil {
		t.Fatal("call against a drained server should fail")
	}
}

func TestClientBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port should fail")
	}
}
