package core

import (
	"errors"
	"testing"
	"testing/quick"

	"superfast/internal/assembly"
	"superfast/internal/flash"
	"superfast/internal/profile"
	"superfast/internal/pv"
)

func testGeo() flash.Geometry {
	g := flash.TestGeometry()
	return g
}

func testScheme(t testing.TB) *Scheme {
	t.Helper()
	s, err := NewScheme(testGeo(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// seedAll characterizes and frees every block of every lane with synthetic
// metadata derived from the pv model.
func seedAll(t testing.TB, s *Scheme, seed uint64) {
	t.Helper()
	g := testGeo()
	p := pv.DefaultParams()
	p.Seed = seed
	p.Layers = g.Layers
	p.Strings = g.Strings
	m := pv.New(p)
	for chip := 0; chip < g.Chips; chip++ {
		for plane := 0; plane < g.PlanesPerChip; plane++ {
			for b := 0; b < g.BlocksPerPlane; b++ {
				lwl := make([]float64, g.LWLsPerBlock())
				for layer := 0; layer < g.Layers; layer++ {
					for str := 0; str < g.Strings; str++ {
						lwl[g.LWLIndex(layer, str)] = m.ProgramLatency(pv.Coord{
							Chip: chip, Plane: plane, Block: b, Layer: layer, String: str,
						}, 0, 1)
					}
				}
				bp := profile.NewBlockProfile(0, b, g.Layers, g.Strings, lwl, 0, 0)
				addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
				s.Seed(addr, bp.PgmSum, profile.EigenFromProfile(bp))
				if err := s.AddFree(addr); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestNewSchemeValidation(t *testing.T) {
	if _, err := NewScheme(flash.Geometry{}, 4); err == nil {
		t.Fatal("invalid geometry should fail")
	}
	if _, err := NewScheme(testGeo(), 0); err == nil {
		t.Fatal("window 0 should fail")
	}
}

func TestSpeedFor(t *testing.T) {
	if SpeedFor(HostWrite) != Fast {
		t.Error("host writes should get fast superblocks")
	}
	if SpeedFor(GCWrite) != Slow {
		t.Error("GC writes should get slow superblocks")
	}
	if Fast.String() != "FAST" || Slow.String() != "SLOW" {
		t.Error("Speed names wrong")
	}
	if HostWrite.String() != "host" || GCWrite.String() != "gc" {
		t.Error("WriteClass names wrong")
	}
}

func TestAssembleFastPicksGlobalFastestReference(t *testing.T) {
	s := testScheme(t)
	seedAll(t, s, 7)
	// Find the globally fastest block.
	g := testGeo()
	members, err := s.Assemble(Fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != g.Lanes() {
		t.Fatalf("got %d members, want %d", len(members), g.Lanes())
	}
	seen := map[int]bool{}
	for _, m := range members {
		l := m.Lane(g)
		if seen[l] {
			t.Fatalf("two members on lane %d", l)
		}
		seen[l] = true
	}
}

func TestAssembleFastVsSlowOrdering(t *testing.T) {
	s := testScheme(t)
	seedAll(t, s, 11)
	fast, err := s.Assemble(Fast)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.Assemble(Slow)
	if err != nil {
		t.Fatal(err)
	}
	sumKey := func(members []flash.BlockAddr) float64 {
		var total float64
		for _, m := range members {
			total += s.info(m).pgmSum
		}
		return total
	}
	if sumKey(fast) >= sumKey(slow) {
		t.Fatalf("fast superblock (%v) should be faster than slow (%v)", sumKey(fast), sumKey(slow))
	}
}

func TestAssembleExhaustsPool(t *testing.T) {
	s := testScheme(t)
	seedAll(t, s, 13)
	g := testGeo()
	total := s.FreeCount()
	if total != g.BlocksPerPlane {
		t.Fatalf("FreeCount = %d, want %d", total, g.BlocksPerPlane)
	}
	used := make(map[flash.BlockAddr]bool)
	for i := 0; i < total; i++ {
		members, err := s.Assemble(Fast)
		if err != nil {
			t.Fatalf("superblock %d: %v", i, err)
		}
		for _, m := range members {
			if used[m] {
				t.Fatalf("block %v used twice", m)
			}
			used[m] = true
		}
	}
	if _, err := s.Assemble(Fast); !errors.Is(err, ErrLaneEmpty) {
		t.Fatalf("empty pool should fail with ErrLaneEmpty, got %v", err)
	}
	if s.Assembled() != total {
		t.Fatalf("Assembled = %d, want %d", s.Assembled(), total)
	}
}

func TestPairCheckBudget(t *testing.T) {
	s := testScheme(t)
	seedAll(t, s, 17)
	before := s.PairChecks()
	if _, err := s.Assemble(Fast); err != nil {
		t.Fatal(err)
	}
	checks := s.PairChecks() - before
	g := testGeo()
	want := (g.Lanes() - 1) * s.K()
	if checks != want {
		t.Fatalf("pair checks per superblock = %d, want %d ((lanes-1)×K, §VI-B2)", checks, want)
	}
}

func TestAddFreeValidation(t *testing.T) {
	s := testScheme(t)
	addr := flash.BlockAddr{Chip: 0, Plane: 0, Block: 1}
	if err := s.AddFree(addr); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFree(addr); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free should fail, got %v", err)
	}
	if err := s.AddFree(flash.BlockAddr{Block: -1}); err == nil {
		t.Fatal("negative block should fail")
	}
	if err := s.AddFree(flash.BlockAddr{Chip: 99}); err == nil {
		t.Fatal("out-of-range chip should fail")
	}
}

func TestGatheringBuildsMetadata(t *testing.T) {
	g := testGeo()
	s, err := NewScheme(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	addr := flash.BlockAddr{Chip: 1, Plane: 0, Block: 5}
	if s.Known(addr) {
		t.Fatal("block should start unknown")
	}
	var sum float64
	for lwl := 0; lwl < g.LWLsPerBlock(); lwl++ {
		lat := 1600 + float64(lwl%7)*6.1
		sum += lat
		if err := s.NoteProgram(addr, lwl, lat); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Known(addr) {
		t.Fatal("block should be known after full program")
	}
	bi := s.info(addr)
	if bi.pgmSum != sum {
		t.Fatalf("gathered sum = %v, want %v", bi.pgmSum, sum)
	}
	if bi.eigen.Len() != g.LWLsPerBlock() {
		t.Fatalf("eigen length = %d, want %d", bi.eigen.Len(), g.LWLsPerBlock())
	}
}

func TestGatheringMatchesOfflineEigen(t *testing.T) {
	// The runtime gatherer must produce exactly the eigen sequence the
	// offline profile derivation produces for the same latencies.
	g := testGeo()
	s, err := NewScheme(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	m := pv.New(p)
	addr := flash.BlockAddr{Chip: 2, Plane: 1, Block: 9}
	lwl := make([]float64, g.LWLsPerBlock())
	for i := 0; i < g.LWLsPerBlock(); i++ {
		layer, str := g.LayerString(i)
		lwl[i] = m.ProgramLatency(pv.Coord{Chip: 2, Plane: 1, Block: 9, Layer: layer, String: str}, 0, 1)
		if err := s.NoteProgram(addr, i, lwl[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := profile.EigenFromProfile(profile.NewBlockProfile(0, 9, g.Layers, g.Strings, lwl, 0, 0))
	got := s.info(addr).eigen
	if got.Distance(want) != 0 {
		t.Fatalf("runtime eigen %s differs from offline eigen %s", got, want)
	}
}

func TestGatheringMidBlockAttachSkipped(t *testing.T) {
	g := testGeo()
	s, _ := NewScheme(g, 4)
	addr := flash.BlockAddr{Block: 3}
	// First observation is word-line 5: the gatherer must skip the pass.
	if err := s.NoteProgram(addr, 5, 1600); err != nil {
		t.Fatal(err)
	}
	for lwl := 6; lwl < g.LWLsPerBlock(); lwl++ {
		if err := s.NoteProgram(addr, lwl, 1600); err != nil {
			t.Fatal(err)
		}
	}
	if s.Known(addr) {
		t.Fatal("partially observed block must stay unknown")
	}
}

func TestGatheringOutOfOrderAbandons(t *testing.T) {
	g := testGeo()
	s, _ := NewScheme(g, 4)
	addr := flash.BlockAddr{Block: 4}
	if err := s.NoteProgram(addr, 0, 1600); err != nil {
		t.Fatal(err)
	}
	if err := s.NoteProgram(addr, 2, 1600); err != nil { // skips 1
		t.Fatal(err)
	}
	if len(s.open) != 0 {
		t.Fatal("out-of-order pass should be abandoned")
	}
	if err := s.NoteProgram(addr, -1, 0); err == nil {
		t.Fatal("negative word-line should fail")
	}
}

func TestColdStartUnknownBlocksSortLast(t *testing.T) {
	s := testScheme(t)
	g := testGeo()
	// Seed one known fast block per lane and one unknown block per lane.
	for lane := 0; lane < g.Lanes(); lane++ {
		known := flash.BlockAddr{Chip: lane / g.PlanesPerChip, Plane: lane % g.PlanesPerChip, Block: 0}
		unknown := flash.BlockAddr{Chip: lane / g.PlanesPerChip, Plane: lane % g.PlanesPerChip, Block: 1}
		s.Seed(known, 600000, profile.NewEigenBuilder(g.LWLsPerBlock()))
		if err := s.AddFree(known); err != nil {
			t.Fatal(err)
		}
		if err := s.AddFree(unknown); err != nil {
			t.Fatal(err)
		}
	}
	members, err := s.Assemble(Fast)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if m.Block != 0 {
			t.Fatalf("fast assembly picked unknown block %v over known fast block", m)
		}
	}
}

func TestMemoryFootprintEquation2(t *testing.T) {
	// Paper §VI-D1: 384 logical word-lines → 48 bytes of eigen bits + 4
	// bytes of latency = 52 bytes per block.
	g := flash.PaperGeometry()
	perBlock := MemoryFootprintBytes(g) / g.TotalBlocks()
	if perBlock != 52 {
		t.Fatalf("per-block footprint = %d bytes, want 52", perBlock)
	}
	// A 1 TB SSD with 8 MB blocks has ~131,072 blocks → ~6.5 MB.
	ssd := flash.Geometry{
		Chips: 8, PlanesPerChip: 4, BlocksPerPlane: 4096,
		Layers: 96, Strings: 4, PageSize: 16 * 1024, SpareSize: 2 * 1024,
	}
	total := MemoryFootprintBytes(ssd)
	mb := float64(total) / (1 << 20)
	if mb < 6.0 || mb > 7.0 {
		t.Fatalf("1TB-class footprint = %.2f MB, want ≈6.5 MB", mb)
	}
}

func TestBatchAssemblerPartition(t *testing.T) {
	lanes := batchLanes(t, 4, 16, 23)
	res, err := BatchAssembler{K: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	if err := assembly.CheckPartition(lanes, res.Superblocks); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAssemblerPairChecks(t *testing.T) {
	// With 4 lanes and K=4, each full superblock costs 12 checks.
	lanes := batchLanes(t, 4, 8, 29)
	res, err := BatchAssembler{K: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	// 8 superblocks; the last few have shrunken pools:
	// pools per lane: 8,7,6,5 → 12 checks; 4 → 12; 3 → 9; 2 → 6; 1 → 3.
	want := 12 + 12 + 12 + 12 + 12 + 9 + 6 + 3
	if res.PairChecks != want {
		t.Fatalf("PairChecks = %d, want %d", res.PairChecks, want)
	}
}

func TestBatchAssemblerOverheadVsSTRMed(t *testing.T) {
	// §VI-B2: QSTR-MED reduces the per-superblock check count from 1,536
	// to 12 — a 99.22% reduction.
	lanes := batchLanes(t, 4, 12, 31)
	q, err := BatchAssembler{K: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	s, err := assembly.STRMedian{Window: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	reduction := 1 - float64(q.PairChecks)/float64(s.PairChecks)
	if reduction < 0.95 {
		t.Fatalf("overhead reduction = %.4f, want > 0.95", reduction)
	}
}

func TestBatchAssemblerValidation(t *testing.T) {
	if _, err := (BatchAssembler{K: 4}).Assemble(nil); err == nil {
		t.Fatal("empty lanes should fail")
	}
	lanes := batchLanes(t, 2, 4, 3)
	if _, err := (BatchAssembler{K: 0}).Assemble(lanes); err == nil {
		t.Fatal("K=0 should fail")
	}
	lanes[1].Blocks = lanes[1].Blocks[:2]
	if _, err := (BatchAssembler{K: 4}).Assemble(lanes); err == nil {
		t.Fatal("ragged lanes should fail")
	}
}

func TestBatchAssemblerBeatsRandom(t *testing.T) {
	lanes := batchLanes(t, 4, 64, 37)
	q, err := BatchAssembler{K: 4}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := assembly.Random{Seed: 3}.Assemble(lanes)
	if err != nil {
		t.Fatal(err)
	}
	mq, err := assembly.Evaluate(lanes, q.Superblocks)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := assembly.Evaluate(lanes, r.Superblocks)
	if err != nil {
		t.Fatal(err)
	}
	if mq.MeanPgm >= mr.MeanPgm {
		t.Fatalf("QSTR-MED (%v) should beat random (%v)", mq.MeanPgm, mr.MeanPgm)
	}
}

// batchLanes builds assembly lanes from the pv model.
func batchLanes(t testing.TB, nLanes, nBlocks int, seed uint64) []assembly.Lane {
	t.Helper()
	p := pv.DefaultParams()
	p.Seed = seed
	p.Layers = 12
	p.Strings = 4
	m := pv.New(p)
	lanes := make([]assembly.Lane, nLanes)
	for l := 0; l < nLanes; l++ {
		blocks := make([]*profile.BlockProfile, nBlocks)
		for b := 0; b < nBlocks; b++ {
			lwl := make([]float64, p.Layers*p.Strings)
			for layer := 0; layer < p.Layers; layer++ {
				for s := 0; s < p.Strings; s++ {
					lwl[layer*p.Strings+s] = m.ProgramLatency(pv.Coord{
						Chip: l, Block: b, Layer: layer, String: s,
					}, 0, 1)
				}
			}
			blocks[b] = profile.NewBlockProfile(l, b, p.Layers, p.Strings, lwl, m.EraseLatency(l, 0, b, 0, 1), 0)
		}
		lanes[l] = assembly.Lane{ID: l, Blocks: blocks}
	}
	return lanes
}

func BenchmarkSchemeAssemble(b *testing.B) {
	g := testGeo()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := NewScheme(g, 4)
		if err != nil {
			b.Fatal(err)
		}
		seedAll(b, s, 7)
		b.StartTimer()
		for s.FreeCount() > 0 {
			if _, err := s.Assemble(Fast); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestRetireRemovesFromPool(t *testing.T) {
	s := testScheme(t)
	addr := flash.BlockAddr{Chip: 1, Plane: 1, Block: 3}
	if err := s.AddFree(addr); err != nil {
		t.Fatal(err)
	}
	if err := s.Retire(addr); err != nil {
		t.Fatal(err)
	}
	if !s.Retired(addr) {
		t.Fatal("block should be retired")
	}
	if s.lane(addr).free.Len() != 0 {
		t.Fatal("retired block should leave the free pool")
	}
	if err := s.AddFree(addr); !errors.Is(err, ErrRetired) {
		t.Fatalf("freeing a retired block: got %v, want ErrRetired", err)
	}
	if err := s.Retire(flash.BlockAddr{Block: -1}); err == nil {
		t.Fatal("out-of-range retire should fail")
	}
}

func TestAssembleSkipsRetiredBlocks(t *testing.T) {
	s := testScheme(t)
	seedAll(t, s, 53)
	g := testGeo()
	// Retire the head (fastest) block of lane 0; assembly must never pick it.
	head := s.lanes[0].free.At(0)
	retiredAddr := s.addrOf(0, head.Block)
	if err := s.Retire(retiredAddr); err != nil {
		t.Fatal(err)
	}
	for s.FreeCount() > 0 {
		members, err := s.Assemble(Fast)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range members {
			if m == retiredAddr {
				t.Fatal("assembly picked a retired block")
			}
		}
	}
	_ = g
}

func TestAssembleArbitrarySelector(t *testing.T) {
	s := testScheme(t)
	seedAll(t, s, 59)
	members, err := s.AssembleArbitrary(func(entries []profile.Entry) int { return len(entries) - 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != testGeo().Lanes() {
		t.Fatalf("got %d members", len(members))
	}
	// Out-of-range selector is rejected.
	if _, err := s.AssembleArbitrary(func(entries []profile.Entry) int { return -1 }); err == nil {
		t.Fatal("negative selector index should fail")
	}
}

func TestAssemblePartitionProperty(t *testing.T) {
	// For any seed and window, on-demand assembly partitions the free pool:
	// every block used exactly once, every superblock one block per lane.
	f := func(seed uint64, kRaw uint8, slow bool) bool {
		g := testGeo()
		k := 1 + int(kRaw)%8
		s, err := NewScheme(g, k)
		if err != nil {
			return false
		}
		seedAll(t, s, seed)
		speed := Fast
		if slow {
			speed = Slow
		}
		used := map[flash.BlockAddr]bool{}
		count := 0
		for s.FreeCount() > 0 {
			members, err := s.Assemble(speed)
			if err != nil {
				return false
			}
			if len(members) != g.Lanes() {
				return false
			}
			lanes := map[int]bool{}
			for _, m := range members {
				if used[m] || lanes[m.Lane(g)] {
					return false
				}
				used[m] = true
				lanes[m.Lane(g)] = true
			}
			count++
		}
		return count == g.BlocksPerPlane && len(used) == g.BlocksPerPlane*g.Lanes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	// Any metadata state survives Snapshot/Restore bit-for-bit (within the
	// 4-byte latency storage of Equation 2).
	f := func(seed uint64, retireRaw uint8) bool {
		g := testGeo()
		s, err := NewScheme(g, 4)
		if err != nil {
			return false
		}
		seedAll(t, s, seed)
		retired := flash.BlockAddr{
			Chip:  int(retireRaw) % g.Chips,
			Plane: int(retireRaw/4) % g.PlanesPerChip,
			Block: int(retireRaw) % g.BlocksPerPlane,
		}
		if err := s.Retire(retired); err != nil {
			return false
		}
		fresh, err := NewScheme(g, 4)
		if err != nil {
			return false
		}
		if err := fresh.RestoreSnapshot(s.Snapshot()); err != nil {
			return false
		}
		for lane := 0; lane < g.Lanes(); lane++ {
			chip, plane := g.LaneChipPlane(lane)
			for b := 0; b < g.BlocksPerPlane; b++ {
				addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: b}
				a, z := s.info(addr), fresh.info(addr)
				if a.known != z.known || a.retired != z.retired {
					return false
				}
				if a.known && (float32(a.pgmSum) != float32(z.pgmSum) || a.eigen.Distance(z.eigen) != 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedForExhaustive(t *testing.T) {
	f := func(raw uint8) bool {
		c := WriteClass(int(raw) % 2)
		sp := SpeedFor(c)
		return (c == HostWrite && sp == Fast) || (c == GCWrite && sp == Slow)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
