package experiments

import (
	"fmt"

	"superfast/internal/assembly"
	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/stats"
)

func init() {
	register("overhead-compute", runOverheadCompute)
	register("overhead-space", runOverheadSpace)
}

// runOverheadCompute reproduces §VI-B2: the similarity-check counts of
// STR-MED versus QSTR-MED. With four lanes and window 4, STR-MED checks
// 1,536 pairs per superblock while QSTR-MED checks 12 — a 99.22% reduction.
func runOverheadCompute(cfg Config) (*Result, error) {
	strategies := []assembly.Assembler{
		assembly.STRMedian{Window: cfg.MedWindow},
		core.BatchAssembler{K: cfg.MedWindow},
	}
	out, err := SweepStrategies(cfg, strategies)
	if err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "§VI-B2 — computing overhead (similarity pair checks)",
		Headers: []string{"Method", "Superblocks", "Pair checks", "Checks/SB", "Combos"},
	}
	for _, o := range out {
		perSB := 0.0
		if o.Superblocks > 0 {
			perSB = float64(o.PairChecks) / float64(o.Superblocks)
		}
		t.AddRow(o.Name, fmt.Sprintf("%d", o.Superblocks), fmt.Sprintf("%d", o.PairChecks),
			fmt.Sprintf("%.1f", perSB), fmt.Sprintf("%d", o.Combos))
	}
	red := stats.Improvement(float64(out[0].PairChecks), float64(out[1].PairChecks))
	text := fmt.Sprintf("QSTR-MED reduces similarity checks by %s versus STR-MED (paper: 99.22%%)\n",
		stats.FmtPct(red))
	return &Result{ID: "overhead-compute", Tables: []*stats.Table{t}, Text: text}, nil
}

// runOverheadSpace reproduces §VI-D1 (Equation 2): the metadata footprint of
// QSTR-MED — 4 bytes of block program latency plus one eigen bit per logical
// word-line: 52 bytes for a 384-word-line block, ≈6.5 MB for a 1 TB SSD.
func runOverheadSpace(cfg Config) (*Result, error) {
	t := &stats.Table{
		Title:   "§VI-D1 — space overhead (Equation 2)",
		Headers: []string{"Configuration", "Blocks", "Bytes/block", "Total"},
	}
	add := func(name string, g flash.Geometry) {
		total := core.MemoryFootprintBytes(g)
		per := total / g.TotalBlocks()
		t.AddRow(name, fmt.Sprintf("%d", g.TotalBlocks()), fmt.Sprintf("%d", per), fmtBytes(total))
	}
	add("experiment array", cfg.Geometry)
	add("paper testbed (24 chips)", flash.PaperGeometry())
	add("1 TB SSD (8 MB blocks)", flash.Geometry{
		Chips: 8, PlanesPerChip: 4, BlocksPerPlane: 4096,
		Layers: 96, Strings: 4, PageSize: 16 * 1024, SpareSize: 2 * 1024,
	})
	return &Result{ID: "overhead-space", Tables: []*stats.Table{t}}, nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
