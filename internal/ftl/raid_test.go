package ftl

import (
	"errors"
	"testing"

	"superfast/internal/flash"
	"superfast/internal/prng"
	"superfast/internal/pv"
)

func raidConfig() Config {
	cfg := testConfig()
	cfg.RAID = true
	return cfg
}

func TestRAIDCapacityReduced(t *testing.T) {
	plain := newFTL(t, testConfig())
	raid := newFTL(t, raidConfig())
	lanes := int64(plain.geo.Lanes())
	want := plain.Capacity() * (lanes - 1) / lanes
	// Allow rounding slack of one page.
	diff := raid.Capacity() - want
	if diff < -1 || diff > 1 {
		t.Fatalf("RAID capacity %d, want ≈%d", raid.Capacity(), want)
	}
}

func TestRAIDRejectsSingleLane(t *testing.T) {
	g := flash.TestGeometry()
	g.Chips = 1
	g.PlanesPerChip = 1
	g.Layers = 12
	p := pv.DefaultParams()
	p.Layers = g.Layers
	p.Strings = g.Strings
	arr := flash.MustNewArray(g, pv.New(p), flash.DefaultECC())
	cfg := raidConfig()
	if _, err := New(arr, cfg); err == nil {
		t.Fatal("RAID over one lane should fail")
	}
}

func TestRAIDRoundTrip(t *testing.T) {
	f := newFTL(t, raidConfig())
	for lpn := int64(0); lpn < 200; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < 200; lpn++ {
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if string(r.Data) != string(payload(lpn, 0)) {
			t.Fatalf("lpn %d corrupted", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// corruptPageOf injects an uncorrectable fault under one mapped lpn.
func corruptPageOf(t *testing.T, f *FTL, lpn int64) {
	t.Helper()
	ppn := f.l2p[lpn]
	if ppn < 0 {
		t.Fatalf("lpn %d unmapped", lpn)
	}
	addr, lwl, typ := f.ppnLocate(ppn)
	if err := f.arr.InjectCorruption(flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: typ}); err != nil {
		t.Fatal(err)
	}
}

func TestRAIDReconstructsCorruptedPage(t *testing.T) {
	f := newFTL(t, raidConfig())
	for lpn := int64(0); lpn < 100; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptPageOf(t, f, 42)
	r, err := f.Read(42)
	if err != nil {
		t.Fatalf("RAID read should reconstruct: %v", err)
	}
	if string(r.Data) != string(payload(42, 0)) {
		t.Fatalf("reconstructed %q, want %q", r.Data, payload(42, 0))
	}
	if f.Stats().RAIDRepairs != 1 {
		t.Fatalf("RAIDRepairs = %d, want 1", f.Stats().RAIDRepairs)
	}
}

func TestRAIDWithoutItFails(t *testing.T) {
	f := newFTL(t, testConfig()) // RAID off
	for lpn := int64(0); lpn < 50; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptPageOf(t, f, 10)
	if _, err := f.Read(10); !errors.Is(err, flash.ErrUncorrectable) {
		t.Fatalf("got %v, want ErrUncorrectable without RAID", err)
	}
}

func TestRAIDDoubleFaultIsDataLoss(t *testing.T) {
	f := newFTL(t, raidConfig())
	for lpn := int64(0); lpn < 100; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a page and one of its super-word-line peers.
	corruptPageOf(t, f, 42)
	ppn := f.l2p[42]
	addr, lwl, typ := f.ppnLocate(ppn)
	sb := f.bySB[addr]
	for _, m := range sb.members {
		if m == addr {
			continue
		}
		if err := f.arr.InjectCorruption(flash.PageAddr{BlockAddr: m, LWL: lwl, Type: typ}); err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := f.Read(42); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("got %v, want ErrDataLoss", err)
	}
}

func TestRAIDSurvivesGCChurn(t *testing.T) {
	f := newFTL(t, raidConfig())
	gen := fillAndChurn(t, f, 1.5, 77)
	if f.Stats().GCRuns == 0 {
		t.Fatal("churn should trigger GC")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	src := prng.New(7)
	for i := 0; i < 150; i++ {
		lpn := int64(src.Intn(int(f.Capacity())))
		r, err := f.Read(lpn)
		if err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
		if string(r.Data) != string(payload(lpn, gen[lpn])) {
			t.Fatalf("lpn %d corrupted under RAID+GC", lpn)
		}
	}
}

func TestRAIDParityRotates(t *testing.T) {
	f := newFTL(t, raidConfig())
	nl := f.geo.Lanes()
	seen := map[int]bool{}
	for id := 0; id < nl*2; id++ {
		seen[f.parityLane(id, nl)] = true
	}
	if len(seen) != nl {
		t.Fatalf("parity used %d distinct lanes, want %d", len(seen), nl)
	}
	if f.parityLane(0, nl) == -1 {
		t.Fatal("parity lane should be assigned with RAID on")
	}
	plain := newFTL(t, testConfig())
	if plain.parityLane(0, nl) != -1 {
		t.Fatal("parity lane should be -1 with RAID off")
	}
}

func TestRAIDGCReadsReconstruct(t *testing.T) {
	// A corrupted page must survive garbage collection: the GC read path
	// reconstructs it before relocation.
	f := newFTL(t, raidConfig())
	for lpn := int64(0); lpn < 150; lpn++ {
		if _, err := f.Write(lpn, payload(lpn, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptPageOf(t, f, 99)
	// Force churn until GC relocates everything at least once.
	gen := map[int64]int{99: 0}
	src := prng.New(13)
	for i := 0; i < int(2*f.Capacity()); i++ {
		lpn := int64(src.Intn(int(f.Capacity())))
		if lpn == 99 {
			continue // keep the corrupted page cold so GC must move it
		}
		g := gen[lpn] + 1
		gen[lpn] = g
		if _, err := f.Write(lpn, payload(lpn, g)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := f.Read(99)
	if err != nil {
		t.Fatalf("cold corrupted page lost: %v", err)
	}
	if string(r.Data) != string(payload(99, 0)) {
		t.Fatalf("lpn 99 = %q", r.Data)
	}
}

func TestParityCodecProperties(t *testing.T) {
	// XOR codec: any member reconstructs from the others plus parity.
	members := [][]byte{
		[]byte("alpha"), []byte("bb"), []byte(""), []byte("delta-long-payload"),
	}
	parity := buildParity(members)
	for fail := range members {
		width := len(parity)
		acc := make([]byte, width)
		xorInto(acc, parity)
		for i, m := range members {
			if i == fail {
				continue
			}
			xorInto(acc, encodeForParity(m, width))
		}
		got, err := decodeParity(acc)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(members[fail]) {
			t.Fatalf("member %d reconstructed as %q, want %q", fail, got, members[fail])
		}
	}
}

func TestDecodeParityErrors(t *testing.T) {
	if _, err := decodeParity([]byte{1, 2}); err == nil {
		t.Fatal("short buffer should fail")
	}
	if _, err := decodeParity([]byte{255, 255, 0, 0}); err == nil {
		t.Fatal("oversized length should fail")
	}
}
