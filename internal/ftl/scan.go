package ftl

import (
	"encoding/binary"
	"fmt"
	"sort"

	"superfast/internal/core"
	"superfast/internal/flash"
	"superfast/internal/pv"
)

// Every flushed page carries a 25-byte tag in the spare area: the logical
// page it holds, a global write sequence (newest copy wins), the superblock
// it belongs to and the superblock's speed class. Scanning these tags
// rebuilds the whole mapping after an unclean power loss — the recovery path
// that works without a checkpoint. (The QSTR-MED similarity metadata is not
// in the tags; after a scan recovery the scheme re-gathers, or restores from
// a core.Scheme snapshot if one survived.)

const (
	tagMagic  = 0x53465431 // "SFT1"
	tagBytes  = 25
	tagNoData = -2 // padded slot: no logical page
	tagParity = -1 // RAID parity page
)

func encodeTagInto(b []byte, lpn int64, seq uint64, sbID int, speed core.Speed) {
	binary.LittleEndian.PutUint32(b[0:], tagMagic)
	binary.LittleEndian.PutUint64(b[4:], uint64(lpn))
	binary.LittleEndian.PutUint64(b[12:], seq)
	binary.LittleEndian.PutUint32(b[20:], uint32(sbID))
	b[24] = byte(speed)
}

func encodeTag(lpn int64, seq uint64, sbID int, speed core.Speed) []byte {
	b := make([]byte, tagBytes)
	encodeTagInto(b, lpn, seq, sbID, speed)
	return b
}

// tagSlab is how many spare-area tags one cold-pool refill carves from a
// single slab allocation. A fresh device's first overwrite pass runs with an
// empty tag pool (nothing has been erased yet), so per-tag allocation there
// costs one malloc per programmed page; slab refills amortize it away.
const tagSlab = 64

// newTag encodes a spare-area tag into a buffer recycled from an erased
// block when one is available — the single largest allocator on the write
// path before the arenas existed. A cold pool refills from a slab: each cut
// is capped with a full slice expression so the tags can never grow into
// their neighbors.
func (f *FTL) newTag(lpn int64, seq uint64, sbID int, speed core.Speed) []byte {
	if len(f.tagPool) == 0 {
		slab := make([]byte, tagBytes*tagSlab)
		for i := 1; i < tagSlab; i++ {
			f.tagPool = append(f.tagPool, slab[i*tagBytes:(i+1)*tagBytes:(i+1)*tagBytes])
		}
		b := slab[0:tagBytes:tagBytes]
		encodeTagInto(b, lpn, seq, sbID, speed)
		return b
	}
	n := len(f.tagPool)
	b := f.tagPool[n-1][:tagBytes]
	f.tagPool = f.tagPool[:n-1]
	encodeTagInto(b, lpn, seq, sbID, speed)
	return b
}

func decodeTag(b []byte) (lpn int64, seq uint64, sbID int, speed core.Speed, ok bool) {
	if len(b) != tagBytes || binary.LittleEndian.Uint32(b[0:]) != tagMagic {
		return 0, 0, 0, 0, false
	}
	return int64(binary.LittleEndian.Uint64(b[4:])),
		binary.LittleEndian.Uint64(b[12:]),
		int(binary.LittleEndian.Uint32(b[20:])),
		core.Speed(b[24]), true
}

// RecoverByScan rebuilds an FTL over a data-retaining array by reading every
// programmed page's spare-area tag: mappings resolve newest-sequence-wins,
// superblock membership and speed come from the tags, and partially written
// superblocks reopen at their next word-line. Blocks never written by this
// FTL (no tags) return to the free pool.
func RecoverByScan(arr *flash.Array, cfg Config) (*FTL, error) {
	f, err := New(arr, cfg)
	if err != nil {
		return nil, err
	}
	geo := f.geo
	type win struct {
		ppn int64
		seq uint64
	}
	best := make(map[int64]win)
	type sbInfo struct {
		members  map[flash.BlockAddr]bool
		speed    core.Speed
		sealedAt uint64
	}
	sbs := map[int]*sbInfo{}
	var maxSeq uint64

	for lane := 0; lane < geo.Lanes(); lane++ {
		chip, plane := geo.LaneChipPlane(lane)
		for blk := 0; blk < geo.BlocksPerPlane; blk++ {
			addr := flash.BlockAddr{Chip: chip, Plane: plane, Block: blk}
			next := arr.NextLWL(addr)
			tagged := false
			for lwl := 0; lwl < next; lwl++ {
				for t := 0; t < flash.PagesPerLWL; t++ {
					oob, err := arr.ReadOOB(flash.PageAddr{BlockAddr: addr, LWL: lwl, Type: pv.PageType(t)})
					if err != nil {
						return nil, fmt.Errorf("ftl: scan %v: %w", addr, err)
					}
					lpn, seq, sbID, speed, ok := decodeTag(oob)
					if !ok {
						continue
					}
					tagged = true
					if seq > maxSeq {
						maxSeq = seq
					}
					info := sbs[sbID]
					if info == nil {
						info = &sbInfo{members: map[flash.BlockAddr]bool{}, speed: speed}
						sbs[sbID] = info
					}
					info.members[addr] = true
					if seq > info.sealedAt {
						info.sealedAt = seq
					}
					if lpn < 0 || lpn >= f.logLen {
						continue // padding or parity
					}
					ppn := f.ppn(addr, lwl, pv.PageType(t))
					if w, seen := best[lpn]; !seen || seq > w.seq {
						best[lpn] = win{ppn: ppn, seq: seq}
					}
				}
			}
			if tagged {
				// The block belongs to a superblock; pull it from the pool.
				f.scheme.RemoveFree(addr)
			}
		}
	}

	// Rebuild the superblock table; ids sorted for determinism.
	ids := make([]int, 0, len(sbs))
	for id := range sbs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		info := sbs[id]
		members := make([]flash.BlockAddr, 0, len(info.members))
		for m := range info.members {
			members = append(members, m)
		}
		sort.Slice(members, func(a, b int) bool {
			return members[a].Lane(geo) < members[b].Lane(geo)
		})
		sb := &superblock{id: id, members: members, speed: info.speed}
		sb.sealed = true
		for _, m := range members {
			if !arr.IsFull(m) {
				sb.sealed = false
			}
			f.bySB[m] = sb
		}
		sb.sealedAt = 0 // ages reset; cost-benefit restarts fairly
		f.sbs[id] = sb
		if id >= f.nextSBID {
			f.nextSBID = id + 1
		}
		if !sb.sealed {
			// Reopen at the members' common write position.
			st := f.newOpenState(sb)
			st.nextWL = arr.NextLWL(members[0])
			f.open[sb.speed] = st
		}
	}
	// Install the winning mappings and valid counters.
	for lpn, w := range best {
		f.l2p[lpn] = w.ppn
		f.p2l[w.ppn] = lpn
		addr, _, _ := f.ppnLocate(w.ppn)
		if sb := f.bySB[addr]; sb != nil {
			sb.valid++
		}
	}
	f.writeSeq = maxSeq + 1
	return f, nil
}

// programMultiOOB issues a multi-plane program with per-member spare-area
// tags, preserving ProgramMulti's latency semantics. The per-member latency
// slice is FTL-owned scratch: every consumer (NoteProgram, attribution, the
// op journal) reads it synchronously before the next flush overwrites it.
func (f *FTL) programMultiOOB(members []flash.BlockAddr, lwl int, pages [][][]byte, oobs [][][]byte) (flash.MultiOpResult, error) {
	arr := f.arr
	if cap(f.flushLats) < len(members) {
		f.flushLats = make([]float64, len(members))
	}
	lats := f.flushLats[:len(members)]
	for i, m := range members {
		var p, o [][]byte
		if pages != nil {
			p = pages[i]
		}
		if oobs != nil {
			o = oobs[i]
		}
		lat, err := arr.ProgramOOB(m, lwl, p, o)
		if err != nil {
			return flash.MultiOpResult{}, err
		}
		lats[i] = lat
	}
	max, min := lats[0], lats[0]
	for _, v := range lats[1:] {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	return flash.MultiOpResult{PerMember: lats, Latency: max, Extra: max - min}, nil
}
