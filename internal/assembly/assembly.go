// Package assembly implements the paper's eight superblock-organization
// directions (§IV-A): random (the baseline), sequential, erase-latency,
// program-latency, local-optimal, LWL-rank, PWL-rank, STR-rank and
// STR-median assembly, together with the combination/pair-check cost
// accounting used in the paper's computing-overhead analysis (§VI-B2).
//
// All strategies consume per-lane lists of gathered block profiles and emit
// superblocks: one block per lane. The window-based strategies walk each
// lane's blocks sorted fast-to-slow and, per superblock, choose one block
// per lane out of the leading W unassigned candidates.
//
// Profiles arrive from the chamber testbed, whose measurements are served by
// the array's shared latency kernel (pv.Kernel): re-assembling at another
// window or P/E step re-reads cached static latencies instead of re-sampling
// the model from scratch.
package assembly

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"superfast/internal/prng"
	"superfast/internal/profile"
)

// Lane is the candidate block set of one plane lane.
type Lane struct {
	ID     int
	Blocks []*profile.BlockProfile
}

// Result is the output of an assembler.
type Result struct {
	// Superblocks[k][lane] indexes into lanes[lane].Blocks.
	Superblocks [][]int
	// PairChecks counts similarity evaluations using the paper's
	// accounting: every candidate combination charges one check per block
	// pair (window 4, 4 lanes → 256·6 = 1,536 for STR-MED; 12 for
	// QSTR-MED).
	PairChecks int
	// Combos counts candidate combinations considered (window 8, 4 lanes
	// → up to 4,096 per superblock for the local-optimal search).
	Combos int
}

// Assembler organizes the blocks of several lanes into superblocks.
type Assembler interface {
	Name() string
	Assemble(lanes []Lane) (Result, error)
}

// ErrLaneShape reports lanes unsuitable for assembly.
var ErrLaneShape = errors.New("assembly: lanes must be non-empty and equally sized")

func checkLanes(lanes []Lane) error {
	if len(lanes) == 0 || len(lanes[0].Blocks) == 0 {
		return ErrLaneShape
	}
	n := len(lanes[0].Blocks)
	wls := len(lanes[0].Blocks[0].LWL)
	for _, l := range lanes {
		if len(l.Blocks) != n {
			return fmt.Errorf("%w: lane %d has %d blocks, lane %d has %d",
				ErrLaneShape, lanes[0].ID, n, l.ID, len(l.Blocks))
		}
		for _, b := range l.Blocks {
			if len(b.LWL) != wls {
				return fmt.Errorf("%w: block profiles disagree on word-line count", ErrLaneShape)
			}
		}
	}
	return nil
}

// zip builds superblocks by pairing the i-th entry of each lane's order.
func zip(orders [][]int) [][]int {
	n := len(orders[0])
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		sb := make([]int, len(orders))
		for l := range orders {
			sb[l] = orders[l][i]
		}
		out[i] = sb
	}
	return out
}

func identityOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

func orderByKey(blocks []*profile.BlockProfile, key func(*profile.BlockProfile) float64) []int {
	o := identityOrder(len(blocks))
	sort.SliceStable(o, func(a, b int) bool { return key(blocks[o[a]]) < key(blocks[o[b]]) })
	return o
}

// Random assembles superblocks by shuffling every lane independently — the
// paper's baseline.
type Random struct {
	Seed uint64
}

// Name implements Assembler.
func (Random) Name() string { return "RANDOM" }

// Assemble implements Assembler.
func (r Random) Assemble(lanes []Lane) (Result, error) {
	if err := checkLanes(lanes); err != nil {
		return Result{}, err
	}
	orders := make([][]int, len(lanes))
	for i, l := range lanes {
		orders[i] = prng.New(r.Seed, 0x9a7d, l.ID).Perm(len(l.Blocks))
	}
	return Result{Superblocks: zip(orders)}, nil
}

// Sequential pairs blocks with the same sequence number on every lane —
// the organization commonly implemented in modern SSDs (§IV-A1).
type Sequential struct{}

// Name implements Assembler.
func (Sequential) Name() string { return "SEQUENTIAL" }

// Assemble implements Assembler.
func (Sequential) Assemble(lanes []Lane) (Result, error) {
	if err := checkLanes(lanes); err != nil {
		return Result{}, err
	}
	orders := make([][]int, len(lanes))
	for i, l := range lanes {
		orders[i] = orderByKey(l.Blocks, func(b *profile.BlockProfile) float64 { return float64(b.Block) })
	}
	return Result{Superblocks: zip(orders)}, nil
}

// ByErase pairs the i-th fastest-erasing block of every lane (§IV-A2).
type ByErase struct{}

// Name implements Assembler.
func (ByErase) Name() string { return "ERS-LTN" }

// Assemble implements Assembler.
func (ByErase) Assemble(lanes []Lane) (Result, error) {
	if err := checkLanes(lanes); err != nil {
		return Result{}, err
	}
	orders := make([][]int, len(lanes))
	for i, l := range lanes {
		orders[i] = orderByKey(l.Blocks, func(b *profile.BlockProfile) float64 { return b.Erase })
	}
	return Result{Superblocks: zip(orders)}, nil
}

// ByPgmSum pairs the i-th fastest-programming block of every lane, using the
// sum of word-line program latencies as the block latency (§IV-A3).
type ByPgmSum struct{}

// Name implements Assembler.
func (ByPgmSum) Name() string { return "PGM-LTN" }

// Assemble implements Assembler.
func (ByPgmSum) Assemble(lanes []Lane) (Result, error) {
	if err := checkLanes(lanes); err != nil {
		return Result{}, err
	}
	orders := make([][]int, len(lanes))
	for i, l := range lanes {
		orders[i] = orderByKey(l.Blocks, func(b *profile.BlockProfile) float64 { return b.PgmSum })
	}
	return Result{Superblocks: zip(orders)}, nil
}

// windowed drives the shared window walk: lanes sorted fast-to-slow, and for
// every superblock a picker chooses one candidate per lane out of the first
// W unassigned blocks of each lane.
type windowed struct {
	window int
	pick   func(cands [][]*profile.BlockProfile, res *Result) []int
}

func (w windowed) assemble(lanes []Lane) (Result, error) {
	if err := checkLanes(lanes); err != nil {
		return Result{}, err
	}
	if w.window <= 0 {
		return Result{}, fmt.Errorf("assembly: window must be positive, got %d", w.window)
	}
	// remaining[l] holds unassigned block indices, fastest first.
	remaining := make([][]int, len(lanes))
	for i, l := range lanes {
		remaining[i] = orderByKey(l.Blocks, func(b *profile.BlockProfile) float64 { return b.PgmSum })
	}
	n := len(lanes[0].Blocks)
	res := Result{Superblocks: make([][]int, 0, n)}
	cands := make([][]*profile.BlockProfile, len(lanes))
	for sb := 0; sb < n; sb++ {
		ws := w.window
		if ws > n-sb {
			ws = n - sb
		}
		for l := range lanes {
			cs := make([]*profile.BlockProfile, ws)
			for i := 0; i < ws; i++ {
				cs[i] = lanes[l].Blocks[remaining[l][i]]
			}
			cands[l] = cs
		}
		choice := w.pick(cands, &res)
		members := make([]int, len(lanes))
		for l, ci := range choice {
			members[l] = remaining[l][ci]
			remaining[l] = append(remaining[l][:ci], remaining[l][ci+1:]...)
		}
		res.Superblocks = append(res.Superblocks, members)
	}
	return res, nil
}

// Optimal is the local-optimal assembly (§IV-A4): per window it brute-forces
// every combination (with branch-and-bound pruning, which cannot change the
// result) for the minimal superblock program latency — the sum over
// word-lines of the slowest member's latency, which is what a multi-plane
// program actually costs. Minimizing the total latency both pairs fast
// blocks together and aligns their per-word-line patterns, so the extra
// latency drops as a consequence. It is the impractical ground reference of
// Tables I and V.
type Optimal struct {
	Window int
}

// Name implements Assembler.
func (o Optimal) Name() string { return fmt.Sprintf("OPTIMAL (%d)", o.Window) }

// Assemble implements Assembler.
func (o Optimal) Assemble(lanes []Lane) (Result, error) {
	return windowed{window: o.Window, pick: pickOptimal}.assemble(lanes)
}

// chargeNominal charges the paper's nominal cost of a window search: every
// combination (the product of the lanes' candidate counts) checks every
// block pair. Branch-and-bound pruning inside the pickers is a pure
// implementation speed-up and must not change the reported overhead.
func chargeNominal(cands [][]*profile.BlockProfile, res *Result) {
	combos := 1
	for _, cs := range cands {
		combos *= len(cs)
	}
	res.Combos += combos
	res.PairChecks += combos * len(cands) * (len(cands) - 1) / 2
}

// pickOptimal minimizes the superblock program latency (the sum over
// word-lines of the running maximum) over the window combinations. It
// enumerates lane by lane carrying the per-word-line running max; because
// adding a lane can only raise each word-line's maximum, any partial sum at
// or above the best total prunes the subtree without changing the result.
func pickOptimal(cands [][]*profile.BlockProfile, res *Result) []int {
	nWL := len(cands[0][0].LWL)
	maxA := make([]float64, nWL)
	saveMax := make([][]float64, len(cands))
	for l := range cands {
		saveMax[l] = make([]float64, nWL)
	}
	chargeNominal(cands, res)
	best := math.Inf(1)
	bestChoice := make([]int, len(cands))
	choice := make([]int, len(cands))

	var walk func(lane int, partial float64)
	walk = func(lane int, partial float64) {
		if lane == len(cands) {
			if partial < best {
				best = partial
				copy(bestChoice, choice)
			}
			return
		}
		for ci, b := range cands[lane] {
			newPartial := partial
			if lane == 0 {
				copy(maxA, b.LWL)
				newPartial = b.PgmSum
				if newPartial >= best {
					continue
				}
			} else {
				copy(saveMax[lane], maxA)
				for wl, v := range b.LWL {
					if v > maxA[wl] {
						newPartial += v - maxA[wl]
						maxA[wl] = v
					}
				}
				if newPartial >= best {
					copy(maxA, saveMax[lane])
					continue
				}
			}
			choice[lane] = ci
			walk(lane+1, newPartial)
			if lane > 0 {
				copy(maxA, saveMax[lane])
			}
		}
	}
	walk(0, 0)
	return bestChoice
}

// RankKind selects which rank vector a rank-based assembler compares.
type RankKind int

// The rank granularities of §IV-A5..7.
const (
	LWLRank RankKind = iota // all logical word-lines ranked 0..LWLs-1
	PWLRank                 // per string, layers ranked 0..Layers-1
	STRRank                 // per layer, strings ranked 0..Strings-1
)

func (k RankKind) String() string {
	switch k {
	case LWLRank:
		return "LWL-RANK"
	case PWLRank:
		return "PWL-RANK"
	case STRRank:
		return "STR-RANK"
	}
	return fmt.Sprintf("RankKind(%d)", int(k))
}

// Ranked is the LWL-/PWL-/STR-rank assembly: per window it chooses the
// combination with the minimal total pairwise rank distance (Equation 1).
type Ranked struct {
	Kind   RankKind
	Window int
}

// Name implements Assembler.
func (r Ranked) Name() string { return fmt.Sprintf("%s (%d)", r.Kind, r.Window) }

// Assemble implements Assembler.
func (r Ranked) Assemble(lanes []Lane) (Result, error) {
	ranks := make(map[*profile.BlockProfile][]int)
	rankOf := func(b *profile.BlockProfile) []int {
		if v, ok := ranks[b]; ok {
			return v
		}
		var v []int
		switch r.Kind {
		case LWLRank:
			v = b.LWLRanks()
		case PWLRank:
			v = b.PWLRanks()
		case STRRank:
			v = b.STRRanks()
		default:
			panic(fmt.Sprintf("assembly: unknown rank kind %d", int(r.Kind)))
		}
		ranks[b] = v
		return v
	}
	dist := func(a, b *profile.BlockProfile) float64 {
		return float64(profile.RankDistance(rankOf(a), rankOf(b)))
	}
	return windowed{window: r.Window, pick: pairwisePicker(dist)}.assemble(lanes)
}

// STRMedian is the STR-median assembly (§IV-A8): 1-bit string ranks compared
// with XOR + popcount.
type STRMedian struct {
	Window int
}

// Name implements Assembler.
func (s STRMedian) Name() string { return fmt.Sprintf("STR-MED (%d)", s.Window) }

// Assemble implements Assembler.
func (s STRMedian) Assemble(lanes []Lane) (Result, error) {
	eigens := make(map[*profile.BlockProfile]profile.Eigen)
	eigenOf := func(b *profile.BlockProfile) profile.Eigen {
		if v, ok := eigens[b]; ok {
			return v
		}
		v := profile.EigenFromProfile(b)
		eigens[b] = v
		return v
	}
	dist := func(a, b *profile.BlockProfile) float64 {
		return float64(eigenOf(a).Distance(eigenOf(b)))
	}
	return windowed{window: s.Window, pick: pairwisePicker(dist)}.assemble(lanes)
}

// pairwisePicker minimizes the total pairwise distance over all window
// combinations. Distances are cached per candidate pair, but PairChecks is
// charged per combination (the paper's accounting: every combination checks
// every pair).
func pairwisePicker(dist func(a, b *profile.BlockProfile) float64) func([][]*profile.BlockProfile, *Result) []int {
	// The cache persists across windows: consecutive windows share most of
	// their candidates, so distances are computed once per block pair over
	// the whole assembly. PairChecks accounting is unaffected (chargeNominal
	// counts the paper's nominal combination costs).
	type pairKey struct{ a, b *profile.BlockProfile }
	cache := make(map[pairKey]float64)
	return func(cands [][]*profile.BlockProfile, res *Result) []int {
		chargeNominal(cands, res)
		nl := len(cands)
		pair := func(l1, c1, l2, c2 int) float64 {
			k := pairKey{cands[l1][c1], cands[l2][c2]}
			if v, ok := cache[k]; ok {
				return v
			}
			v := dist(k.a, k.b)
			cache[k] = v
			return v
		}
		best := math.Inf(1)
		bestChoice := make([]int, nl)
		choice := make([]int, nl)
		var walk func(lane int, partial float64)
		walk = func(lane int, partial float64) {
			if lane == nl {
				if partial < best {
					best = partial
					copy(bestChoice, choice)
				}
				return
			}
			for ci := range cands[lane] {
				d := partial
				for l2 := 0; l2 < lane; l2++ {
					d += pair(l2, choice[l2], lane, ci)
				}
				if d >= best {
					continue
				}
				choice[lane] = ci
				walk(lane+1, d)
			}
		}
		walk(0, 0)
		return bestChoice
	}
}

// Metrics summarizes the extra latency of an organized set of superblocks.
type Metrics struct {
	ExtraPgm []float64 // per superblock, µs
	ExtraErs []float64
	MeanPgm  float64
	MeanErs  float64
}

// Evaluate measures the extra program and erase latency of each assembled
// superblock against the given lanes (which may be a re-measurement of the
// same blocks, so that strategies are scored on fresh observations rather
// than the data they trained on).
func Evaluate(lanes []Lane, superblocks [][]int) (Metrics, error) {
	if err := checkLanes(lanes); err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		ExtraPgm: make([]float64, len(superblocks)),
		ExtraErs: make([]float64, len(superblocks)),
	}
	members := make([]*profile.BlockProfile, len(lanes))
	for k, sb := range superblocks {
		if len(sb) != len(lanes) {
			return Metrics{}, fmt.Errorf("assembly: superblock %d has %d members for %d lanes", k, len(sb), len(lanes))
		}
		for l, bi := range sb {
			if bi < 0 || bi >= len(lanes[l].Blocks) {
				return Metrics{}, fmt.Errorf("assembly: superblock %d member %d out of range", k, bi)
			}
			members[l] = lanes[l].Blocks[bi]
		}
		m.ExtraPgm[k] = profile.ExtraProgram(members)
		m.ExtraErs[k] = profile.ExtraErase(members)
		m.MeanPgm += m.ExtraPgm[k]
		m.MeanErs += m.ExtraErs[k]
	}
	if len(superblocks) > 0 {
		m.MeanPgm /= float64(len(superblocks))
		m.MeanErs /= float64(len(superblocks))
	}
	return m, nil
}

// CheckPartition verifies that the superblocks use every block of every lane
// exactly once. It is the core correctness invariant of any assembler.
func CheckPartition(lanes []Lane, superblocks [][]int) error {
	if err := checkLanes(lanes); err != nil {
		return err
	}
	n := len(lanes[0].Blocks)
	if len(superblocks) != n {
		return fmt.Errorf("assembly: %d superblocks for %d blocks per lane", len(superblocks), n)
	}
	for l := range lanes {
		seen := make([]bool, n)
		for k, sb := range superblocks {
			if len(sb) != len(lanes) {
				return fmt.Errorf("assembly: superblock %d has %d members", k, len(sb))
			}
			bi := sb[l]
			if bi < 0 || bi >= n {
				return fmt.Errorf("assembly: superblock %d lane %d index %d out of range", k, l, bi)
			}
			if seen[bi] {
				return fmt.Errorf("assembly: lane %d block %d used twice", l, bi)
			}
			seen[bi] = true
		}
	}
	return nil
}
