package ftl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"superfast/internal/flash"
	"superfast/internal/pv"
)

// RAID-5-style parity across the members of a superblock: when enabled, one
// rotating lane of every superblock holds parity pages instead of user data,
// and a page whose ECC fails even after retries is reconstructed by XOR-ing
// its super-word-line peers with the parity page — the superblock RAID
// schemes of the paper's related work ([13], [36]) built on the same
// parallel structure QSTR-MED organizes.
//
// Parity encoding: every payload is serialized as a 4-byte little-endian
// length followed by the data, zero-padded to the longest member; the parity
// page stores the XOR of those buffers, so reconstruction recovers both the
// payload bytes and the exact length.

// ErrDataLoss reports an uncorrectable page that could not be reconstructed.
var ErrDataLoss = errors.New("ftl: uncorrectable page and reconstruction failed")

// parityLane returns the member index holding parity for a superblock,
// rotating RAID-5 style so parity wear spreads over the lanes.
func (f *FTL) parityLane(sbID, members int) int {
	if !f.cfg.RAID {
		return -1
	}
	return sbID % members
}

// encodeForParity serializes a payload for the XOR computation.
func encodeForParity(data []byte, width int) []byte {
	buf := make([]byte, width)
	binary.LittleEndian.PutUint32(buf, uint32(len(data)))
	copy(buf[4:], data)
	return buf
}

// parityWidth returns the buffer width needed to cover the given payloads.
func parityWidth(pages [][]byte) int {
	w := 4
	for _, p := range pages {
		if 4+len(p) > w {
			w = 4 + len(p)
		}
	}
	return w
}

// xorInto accumulates src into dst.
func xorInto(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// buildParity computes the parity payload for one page type of a pending
// super word-line.
func buildParity(pages [][]byte) []byte {
	w := parityWidth(pages)
	parity := make([]byte, w)
	for _, p := range pages {
		xorInto(parity, encodeForParity(p, w))
	}
	return parity
}

// decodeParity recovers (length, data) from a reconstructed buffer.
func decodeParity(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("ftl: reconstructed buffer too short")
	}
	n := binary.LittleEndian.Uint32(buf)
	if int(n) > len(buf)-4 {
		return nil, fmt.Errorf("ftl: reconstructed length %d exceeds buffer", n)
	}
	return append([]byte(nil), buf[4:4+n]...), nil
}

// reconstruct rebuilds one uncorrectable page from its super-word-line peers
// and the parity page.
func (f *FTL) reconstruct(sb *superblock, failLane, lwl int, typ pv.PageType) ([]byte, error) {
	// Gather every other member's page (including parity).
	var bufs [][]byte
	width := 4
	for lane, m := range sb.members {
		if lane == failLane {
			continue
		}
		r, err := f.arr.Read(flash.PageAddr{BlockAddr: m, LWL: lwl, Type: typ})
		if err != nil {
			return nil, fmt.Errorf("%w: peer %v also unreadable: %v", ErrDataLoss, m, err)
		}
		f.stats.ReadLatency += r.Latency
		bufs = append(bufs, r.Data)
		if 4+len(r.Data) > width {
			width = 4 + len(r.Data)
		}
	}
	acc := make([]byte, width)
	pl := f.parityLane(sb.id, len(sb.members))
	i := 0
	for lane := range sb.members {
		if lane == failLane {
			continue
		}
		if lane == pl {
			// The parity page is already an XOR buffer: accumulate raw.
			raw := bufs[i]
			if len(raw) > width {
				tmp := make([]byte, len(raw))
				copy(tmp, acc)
				acc = tmp
				width = len(raw)
			}
			xorInto(acc, raw)
		} else {
			xorInto(acc, encodeForParity(bufs[i], width))
		}
		i++
	}
	data, err := decodeParity(acc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDataLoss, err)
	}
	f.stats.RAIDRepairs++
	return data, nil
}
